//! NSGA-II: direct multi-objective architecture search.
//!
//! The paper evaluates the *whole* grid and intersects it with a Pareto
//! front afterwards; NSGA-II (Deb et al. 2002) instead evolves a
//! population toward the front directly, reaching comparable fronts at a
//! fraction of the trial budget — the quantified version of the paper's
//! Section 5 "streamline the search" suggestion.

use crate::evaluator::Evaluator;
use crate::experiment::OBJECTIVE_SENSES;
use crate::space::{InputCombo, SearchSpace, TrialSpec};
use hydronas_graph::{serialized_size_bytes, ArchConfig, ModelGraph, PoolConfig};
use hydronas_latency::predict_all;
use hydronas_pareto::{crowding_distance, non_dominated_sort, pareto_front, Point};
use hydronas_tensor::TensorRng;
use serde::{Deserialize, Serialize};

/// One evaluated individual: spec + the three objectives.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Individual {
    pub spec: TrialSpec,
    /// `[accuracy %, latency ms, memory MB]`.
    pub objectives: [f64; 3],
}

impl Individual {
    fn point(&self, id: usize) -> Point {
        Point::new(id, self.objectives.to_vec())
    }
}

/// NSGA-II parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Nsga2Config {
    pub population: usize,
    pub generations: usize,
    /// Latency/memory evaluation tile size.
    pub input_hw: usize,
}

impl Default for Nsga2Config {
    fn default() -> Nsga2Config {
        Nsga2Config {
            population: 24,
            generations: 8,
            input_hw: 32,
        }
    }
}

/// Search outcome: the final population and its first front.
#[derive(Clone, Debug)]
pub struct Nsga2Result {
    pub population: Vec<Individual>,
    pub front: Vec<Individual>,
    /// Total evaluator calls spent.
    pub evaluations: usize,
}

fn pick<T: Copy>(options: &[T], rng: &mut TensorRng) -> T {
    options[rng.index(options.len())]
}

fn sample_arch(space: &SearchSpace, channels: usize, rng: &mut TensorRng) -> ArchConfig {
    let pool_choice = pick(&space.pool_choices, rng);
    ArchConfig {
        in_channels: channels,
        kernel_size: pick(&space.kernel_sizes, rng),
        stride: pick(&space.strides, rng),
        padding: pick(&space.paddings, rng),
        pool: (pool_choice == 1).then_some(PoolConfig {
            kernel: pick(&space.pool_kernels, rng),
            stride: pick(&space.pool_strides, rng),
        }),
        initial_features: pick(&space.initial_features, rng),
        num_classes: 2,
    }
}

fn mutate_arch(space: &SearchSpace, arch: &ArchConfig, rng: &mut TensorRng) -> ArchConfig {
    let mut out = *arch;
    match rng.index(5) {
        0 => out.kernel_size = pick(&space.kernel_sizes, rng),
        1 => out.stride = pick(&space.strides, rng),
        2 => out.padding = pick(&space.paddings, rng),
        3 => out.initial_features = pick(&space.initial_features, rng),
        _ => {
            let pool_choice = pick(&space.pool_choices, rng);
            out.pool = (pool_choice == 1).then_some(PoolConfig {
                kernel: pick(&space.pool_kernels, rng),
                stride: pick(&space.pool_strides, rng),
            });
        }
    }
    out
}

/// Uniform crossover over the five stem dimensions.
fn crossover(a: &ArchConfig, b: &ArchConfig, rng: &mut TensorRng) -> ArchConfig {
    let coin = |rng: &mut TensorRng| rng.index(2) == 0;
    ArchConfig {
        in_channels: a.in_channels,
        kernel_size: if coin(rng) {
            a.kernel_size
        } else {
            b.kernel_size
        },
        stride: if coin(rng) { a.stride } else { b.stride },
        padding: if coin(rng) { a.padding } else { b.padding },
        pool: if coin(rng) { a.pool } else { b.pool },
        initial_features: if coin(rng) {
            a.initial_features
        } else {
            b.initial_features
        },
        num_classes: 2,
    }
}

struct Search<'a> {
    combo: InputCombo,
    evaluator: &'a dyn Evaluator,
    config: Nsga2Config,
    seed: u64,
    next_id: usize,
    evaluations: usize,
}

impl Search<'_> {
    fn evaluate(&mut self, arch: ArchConfig) -> Option<Individual> {
        let spec = TrialSpec {
            id: self.next_id,
            combo: self.combo,
            arch,
            kernel_size_pool: arch.pool.map_or(3, |p| p.kernel),
            stride_pool: arch.pool.map_or(2, |p| p.stride),
        };
        self.next_id += 1;
        self.evaluations += 1;
        let graph = ModelGraph::from_arch(&arch, self.config.input_hw).ok()?;
        let accuracy = self
            .evaluator
            .evaluate(&spec, self.seed)
            .ok()?
            .mean_accuracy;
        let latency = predict_all(&graph).mean_ms;
        let memory = serialized_size_bytes(&graph) as f64 / 1e6;
        Some(Individual {
            spec,
            objectives: [accuracy, latency, memory],
        })
    }

    /// Environmental selection: keep the best `population` individuals by
    /// (front rank, crowding distance).
    fn select(&self, pool: Vec<Individual>) -> Vec<Individual> {
        let points: Vec<Point> = pool
            .iter()
            .enumerate()
            .map(|(i, ind)| ind.point(i))
            .collect();
        let fronts = non_dominated_sort(&points, &OBJECTIVE_SENSES);
        let mut selected: Vec<Individual> = Vec::with_capacity(self.config.population);
        for front in fronts {
            let remaining = self.config.population - selected.len();
            if front.len() <= remaining {
                selected.extend(front.iter().map(|p| pool[p.id].clone()));
            } else {
                // Partial front: prefer the most isolated trade-offs.
                let crowding = crowding_distance(&front);
                let mut order: Vec<usize> = (0..front.len()).collect();
                order.sort_by(|&a, &b| {
                    crowding[b]
                        .partial_cmp(&crowding[a])
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                selected.extend(
                    order
                        .into_iter()
                        .take(remaining)
                        .map(|i| pool[front[i].id].clone()),
                );
            }
            if selected.len() == self.config.population {
                break;
            }
        }
        selected
    }
}

/// Runs NSGA-II; deterministic per seed.
pub fn nsga2(
    space: &SearchSpace,
    combo: InputCombo,
    evaluator: &dyn Evaluator,
    config: &Nsga2Config,
    seed: u64,
) -> Nsga2Result {
    assert!(config.population >= 4, "population too small");
    assert!(config.generations >= 1, "need at least one generation");
    let mut rng = TensorRng::seed_from_u64(seed);
    let mut search = Search {
        combo,
        evaluator,
        config: *config,
        seed,
        next_id: 0,
        evaluations: 0,
    };

    let mut population: Vec<Individual> = Vec::with_capacity(config.population);
    while population.len() < config.population {
        let arch = sample_arch(space, combo.channels, &mut rng);
        if let Some(ind) = search.evaluate(arch) {
            population.push(ind);
        }
    }

    for _ in 0..config.generations {
        // Binary-tournament parents on (rank, crowding) approximated by
        // dominance of raw objective vectors.
        let mut offspring: Vec<Individual> = Vec::with_capacity(config.population);
        while offspring.len() < config.population {
            let parent = |rng: &mut TensorRng, pop: &[Individual]| -> ArchConfig {
                let a = &pop[rng.index(pop.len())];
                let b = &pop[rng.index(pop.len())];
                let pa = a.point(0);
                let pb = b.point(1);
                if hydronas_pareto::dominates(&pb, &pa, &OBJECTIVE_SENSES) {
                    b.spec.arch
                } else {
                    a.spec.arch
                }
            };
            let pa = parent(&mut rng, &population);
            let pb = parent(&mut rng, &population);
            let mut child = crossover(&pa, &pb, &mut rng);
            if rng.index(2) == 0 {
                child = mutate_arch(space, &child, &mut rng);
            }
            if let Some(ind) = search.evaluate(child) {
                offspring.push(ind);
            }
        }
        let mut pool = population;
        pool.extend(offspring);
        population = search.select(pool);
    }

    let points: Vec<Point> = population
        .iter()
        .enumerate()
        .map(|(i, ind)| ind.point(i))
        .collect();
    let front_points = pareto_front(&points, &OBJECTIVE_SENSES);
    // Converged populations carry many copies of the same architecture
    // (copies never dominate each other); report each architecture once.
    let mut seen = std::collections::HashSet::new();
    let front: Vec<Individual> = front_points
        .iter()
        .map(|p| population[p.id].clone())
        .filter(|ind| seen.insert(ind.spec.arch.key()))
        .collect();
    let evaluations = search.evaluations;
    Nsga2Result {
        population,
        front,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::SurrogateEvaluator;
    use hydronas_pareto::dominates;

    const COMBO: InputCombo = InputCombo {
        channels: 5,
        batch_size: 16,
    };

    fn run(seed: u64) -> Nsga2Result {
        nsga2(
            &SearchSpace::paper(),
            COMBO,
            &SurrogateEvaluator::default(),
            &Nsga2Config {
                population: 16,
                generations: 6,
                input_hw: 32,
            },
            seed,
        )
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run(1);
        let b = run(1);
        assert_eq!(a.front.len(), b.front.len());
        for (x, y) in a.front.iter().zip(&b.front) {
            assert_eq!(x.spec.arch, y.spec.arch);
            assert_eq!(x.objectives, y.objectives);
        }
    }

    #[test]
    fn front_is_internally_non_dominated() {
        let result = run(2);
        assert!(!result.front.is_empty());
        for (i, a) in result.front.iter().enumerate() {
            for (j, b) in result.front.iter().enumerate() {
                if i == j {
                    continue;
                }
                let pa = a.point(0);
                let pb = b.point(1);
                assert!(!dominates(&pa, &pb, &OBJECTIVE_SENSES));
            }
        }
    }

    #[test]
    fn population_size_is_maintained() {
        let result = run(3);
        assert_eq!(result.population.len(), 16);
        // Budget: init + generations * population (minus invalid retries).
        assert!(result.evaluations >= 16 * 7);
        assert!(result.evaluations <= 16 * 7 + 32);
    }

    #[test]
    fn finds_the_minimum_memory_family() {
        // The true front is all f=32; NSGA-II should discover that corner
        // with a budget far below the 288-trial grid.
        let result = run(4);
        assert!(
            result
                .front
                .iter()
                .any(|ind| ind.spec.arch.initial_features == 32),
            "no minimum-width individual on the front"
        );
        let best_mem = result
            .front
            .iter()
            .map(|i| i.objectives[2])
            .fold(f64::INFINITY, f64::min);
        assert!(best_mem < 11.5, "memory corner not found: {best_mem}");
    }

    #[test]
    fn front_has_no_duplicate_architectures() {
        let result = run(6);
        let mut keys: Vec<String> = result.front.iter().map(|i| i.spec.arch.key()).collect();
        let before = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), before, "front contains duplicate architectures");
    }

    #[test]
    fn front_spans_the_latency_tradeoff() {
        let result = run(5);
        let lats: Vec<f64> = result.front.iter().map(|i| i.objectives[1]).collect();
        let min = lats.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = lats.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // Multi-objective search keeps diversity: the front is not a
        // single point (unless it collapsed, which would be a bug).
        assert!(result.front.len() >= 2, "front collapsed");
        assert!(max > min, "no latency spread on the front");
    }

    #[test]
    #[should_panic(expected = "population too small")]
    fn tiny_population_rejected() {
        let _ = nsga2(
            &SearchSpace::paper(),
            COMBO,
            &SurrogateEvaluator::default(),
            &Nsga2Config {
                population: 2,
                generations: 1,
                input_hw: 32,
            },
            0,
        );
    }
}
