//! Sweep observability: live counters, per-trial wall time, and an ETA
//! derived from the simulated-clock cost model.
//!
//! The scheduler emits [`SweepEvent`]s into a pluggable [`ProgressSink`]
//! as results stream off the collector channel. Two sinks ship with the
//! crate: [`StderrTicker`] (a rate-limited stderr progress line for the
//! `repro` binary's `--progress` flag) and [`CollectingSink`] (a silent
//! recorder for tests and programmatic consumers).

use crate::experiment::TrialOutcome;
use crate::sweep::DegradationReport;
use serde::{Deserialize, Serialize};

/// Running counters of one sweep, updated as each trial finishes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SweepStats {
    /// Trials in the experiment, including journal-replayed ones.
    pub scheduled: usize,
    /// Trials restored from a write-ahead journal instead of re-run.
    pub replayed: usize,
    /// Trials that finished with usable objectives.
    pub completed: usize,
    /// Trials whose terminal status is a failure.
    pub failed: usize,
    /// Extra attempts spent on transient environment failures (attempts
    /// beyond each trial's first).
    pub retried: usize,
    /// Real elapsed wall-clock of the sweep, seconds.
    pub wall_s: f64,
    /// Simulated training seconds of the live (non-replayed) trials
    /// finished so far — the ETA's progress measure.
    pub sim_done_s: f64,
    /// Simulated training seconds of all live trials.
    pub sim_total_s: f64,
}

impl SweepStats {
    /// Trials with a terminal outcome so far (replayed ones count).
    pub fn finished(&self) -> usize {
        self.completed + self.failed
    }

    /// Estimated seconds until the sweep finishes, extrapolating the
    /// observed rate through the simulated cost of the remaining trials
    /// ([`crate::clock::trial_duration_s`]). Cheap trials therefore move
    /// the ETA less than expensive ones. `None` until the first live
    /// trial lands.
    pub fn eta_s(&self) -> Option<f64> {
        if self.sim_done_s <= 0.0 || self.wall_s <= 0.0 {
            return None;
        }
        let remaining = (self.sim_total_s - self.sim_done_s).max(0.0);
        Some(self.wall_s * remaining / self.sim_done_s)
    }

    /// Multi-line human-readable summary (the `sweep.txt` artifact).
    pub fn summary(&self) -> String {
        format!(
            "scheduled : {}\nreplayed  : {}\ncompleted : {}\nfailed    : {}\nretried   : {}\nwall-clock: {:.2} s",
            self.scheduled, self.replayed, self.completed, self.failed, self.retried, self.wall_s
        )
    }
}

/// One observable moment of a sweep.
///
/// `#[non_exhaustive]`: sinks outside this crate must carry a wildcard
/// arm, so future events (like `Degraded`, added for the robustness
/// subsystem) do not break them.
#[derive(Debug)]
#[non_exhaustive]
pub enum SweepEvent<'a> {
    /// Emitted once before any trial runs; `stats` already carries the
    /// journal-replay counts.
    Started { stats: &'a SweepStats },
    /// One live trial reached a terminal state. `wall_s` is the real
    /// time this trial spent in its worker (all attempts included).
    Trial {
        outcome: &'a TrialOutcome,
        attempts: usize,
        wall_s: f64,
        stats: &'a SweepStats,
    },
    /// Emitted once, just before `Finished`, when the sweep degraded
    /// (cancelled, deadline-limited, or lost trials to timeouts).
    Degraded {
        report: &'a DegradationReport,
        stats: &'a SweepStats,
    },
    /// Emitted once after the collector drains.
    Finished { stats: &'a SweepStats },
}

/// Receives [`SweepEvent`]s from the scheduler's collector thread.
pub trait ProgressSink {
    fn on_event(&mut self, event: &SweepEvent);
}

/// Prints a rate-limited progress line to stderr.
pub struct StderrTicker {
    /// Print every `every`-th trial event (plus start/finish).
    every: usize,
}

impl StderrTicker {
    pub fn new(every: usize) -> StderrTicker {
        StderrTicker {
            every: every.max(1),
        }
    }
}

impl Default for StderrTicker {
    /// Ticks every 32 trials — ~54 lines over the full 1,728-trial grid.
    fn default() -> StderrTicker {
        StderrTicker::new(32)
    }
}

impl ProgressSink for StderrTicker {
    fn on_event(&mut self, event: &SweepEvent) {
        match event {
            SweepEvent::Started { stats } => {
                eprintln!(
                    "[sweep] {} trials scheduled ({} replayed from journal)",
                    stats.scheduled, stats.replayed
                );
            }
            SweepEvent::Trial {
                outcome,
                attempts,
                wall_s,
                stats,
            } => {
                if stats.finished() % self.every != 0 && stats.finished() != stats.scheduled {
                    return;
                }
                let eta = match stats.eta_s() {
                    Some(s) => format!("{s:.1}s"),
                    None => "--".to_string(),
                };
                eprintln!(
                    "[sweep] {}/{} ({:.1}%) ok {} fail {} retry {} | trial {} took {:.1} ms ({} attempt{}) | elapsed {:.1}s eta {}",
                    stats.finished(),
                    stats.scheduled,
                    100.0 * stats.finished() as f64 / stats.scheduled.max(1) as f64,
                    stats.completed,
                    stats.failed,
                    stats.retried,
                    outcome.spec.id,
                    wall_s * 1e3,
                    attempts,
                    if *attempts == 1 { "" } else { "s" },
                    stats.wall_s,
                    eta
                );
            }
            SweepEvent::Degraded { report, .. } => {
                for line in report.summary().lines() {
                    eprintln!("[sweep] degraded: {line}");
                }
            }
            SweepEvent::Finished { stats } => {
                eprintln!(
                    "[sweep] done: {} completed, {} failed, {} retried in {:.2}s",
                    stats.completed, stats.failed, stats.retried, stats.wall_s
                );
            }
        }
    }
}

/// Silent sink that records what it saw — the test-side counterpart of
/// [`StderrTicker`].
#[derive(Debug, Default)]
pub struct CollectingSink {
    pub started: usize,
    pub finished: usize,
    /// `(trial id, attempts, wall seconds)` per live trial event.
    pub trials: Vec<(usize, usize, f64)>,
    /// Degradation snapshot from the `Degraded` event, if one fired.
    pub degraded: Option<DegradationReport>,
    /// Stats snapshot from the `Finished` event.
    pub final_stats: Option<SweepStats>,
}

impl ProgressSink for CollectingSink {
    fn on_event(&mut self, event: &SweepEvent) {
        match event {
            SweepEvent::Started { .. } => self.started += 1,
            SweepEvent::Trial {
                outcome,
                attempts,
                wall_s,
                ..
            } => {
                self.trials.push((outcome.spec.id, *attempts, *wall_s));
            }
            SweepEvent::Degraded { report, .. } => {
                self.degraded = Some((*report).clone());
            }
            SweepEvent::Finished { stats } => {
                self.finished += 1;
                self.final_stats = Some(**stats);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eta_extrapolates_through_simulated_work() {
        let stats = SweepStats {
            scheduled: 10,
            completed: 5,
            wall_s: 2.0,
            sim_done_s: 100.0,
            sim_total_s: 300.0,
            ..Default::default()
        };
        // 2 s bought 100 simulated seconds; 200 remain -> 4 s.
        assert_eq!(stats.eta_s(), Some(4.0));
    }

    #[test]
    fn eta_is_unknown_before_progress() {
        let stats = SweepStats {
            scheduled: 10,
            sim_total_s: 300.0,
            ..Default::default()
        };
        assert_eq!(stats.eta_s(), None);
    }

    #[test]
    fn eta_is_unknown_on_replay_only_resume() {
        // A fully-journaled sweep resumes with no live trials: all
        // progress is replayed, the live sim counters stay zero, and no
        // rate can be extrapolated — even though wall time accrues.
        let stats = SweepStats {
            scheduled: 10,
            replayed: 10,
            completed: 10,
            wall_s: 0.3,
            sim_done_s: 0.0,
            sim_total_s: 0.0,
            ..Default::default()
        };
        assert_eq!(stats.eta_s(), None);
    }

    #[test]
    fn eta_is_unknown_at_zero_wall_time() {
        // Simulated progress without elapsed wall time (first trial lands
        // within clock resolution) must not divide by zero or claim an
        // instant finish.
        let stats = SweepStats {
            scheduled: 10,
            completed: 1,
            wall_s: 0.0,
            sim_done_s: 50.0,
            sim_total_s: 300.0,
            ..Default::default()
        };
        assert_eq!(stats.eta_s(), None);
    }

    #[test]
    fn eta_shrinks_monotonically_under_constant_rate() {
        // At a constant rate (100 simulated seconds per wall second) the
        // estimate must only ever decrease as trials land.
        let sim_total_s = 1000.0;
        let mut last = f64::INFINITY;
        for k in 1..=10 {
            let stats = SweepStats {
                scheduled: 10,
                completed: k,
                wall_s: k as f64,
                sim_done_s: 100.0 * k as f64,
                sim_total_s,
                ..Default::default()
            };
            let eta = stats.eta_s().expect("live progress has an ETA");
            assert!(eta < last, "eta went {last} -> {eta} at step {k}");
            last = eta;
        }
        // And the final step reports zero remaining work.
        assert_eq!(last, 0.0);
    }

    #[test]
    fn summary_lists_every_counter() {
        let stats = SweepStats {
            scheduled: 24,
            replayed: 8,
            completed: 22,
            failed: 2,
            retried: 3,
            wall_s: 1.25,
            ..Default::default()
        };
        let s = stats.summary();
        for needle in [
            "scheduled : 24",
            "replayed  : 8",
            "completed : 22",
            "failed    : 2",
            "retried   : 3",
            "1.25 s",
        ] {
            assert!(s.contains(needle), "missing {needle:?} in {s}");
        }
        assert_eq!(stats.finished(), 24);
    }

    #[test]
    fn stats_round_trip_through_json() {
        let stats = SweepStats {
            scheduled: 3,
            completed: 2,
            failed: 1,
            wall_s: 0.5,
            ..Default::default()
        };
        let json = serde_json::to_string(&stats).unwrap();
        let back: SweepStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats);
    }
}
