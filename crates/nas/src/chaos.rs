//! Deterministic chaos harness for the sweep engine.
//!
//! [`ChaosConfig`] injects the three fault classes the robustness
//! subsystem must survive — per-trial timeouts, evaluator panics, and
//! transient environment failures — as a pure function of
//! `(chaos seed, trial id, attempt)`. Determinism is the point: a test
//! that fails under a particular fault mix replays the identical mix
//! from the same seed, and two sweeps with the same chaos config observe
//! the same faults regardless of worker count or scheduling order.
//!
//! Faults are rolled *per attempt*, so a panic on attempt 1 usually
//! clears on attempt 2 — which is exactly the shape of failure the
//! retry policy exists to absorb.
//!
//! ```
//! use hydronas_nas::chaos::{ChaosConfig, ChaosFault};
//!
//! let chaos = ChaosConfig::new(7).with_panics(500); // 50% of attempts panic
//! let first = chaos.fault_for(3, 1);
//! assert_eq!(first, chaos.fault_for(3, 1), "same roll, same fault");
//! assert!(matches!(first, None | Some(ChaosFault::Panic)));
//! ```

/// A fault the harness injects into one trial attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ChaosFault {
    /// The attempt is declared over its simulated deadline (terminal:
    /// timeouts are not retried).
    Timeout,
    /// The evaluator panics mid-attempt (transient: caught and retried).
    Panic,
    /// The attempt fails with an environment error (transient: retried).
    Transient,
}

/// Seeded fault-injection rates, in per-mille of trial attempts.
///
/// Built with `with_*` chaining; the struct is `#[non_exhaustive]` so
/// future fault classes can be added without breaking callers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct ChaosConfig {
    seed: u64,
    timeout_per_mille: u16,
    panic_per_mille: u16,
    transient_per_mille: u16,
}

/// splitmix64 finalizer (same mixer the scheduler uses for failure
/// injection) — decorrelates the roll from raw id/attempt arithmetic.
fn mix64(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Domain-separation salt so chaos rolls never correlate with the
/// scheduler's own injected-failure streams.
const CHAOS_SALT: u64 = 0xC4A0_5BAD_FA17_5EED;

impl ChaosConfig {
    /// A harness with the given seed and every fault rate at zero.
    pub fn new(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            ..ChaosConfig::default()
        }
    }

    /// Sets the timeout-injection rate (per mille of attempts, capped
    /// at 1000).
    pub fn with_timeouts(mut self, per_mille: u16) -> ChaosConfig {
        self.timeout_per_mille = per_mille.min(1000);
        self
    }

    /// Sets the panic-injection rate (per mille of attempts).
    pub fn with_panics(mut self, per_mille: u16) -> ChaosConfig {
        self.panic_per_mille = per_mille.min(1000);
        self
    }

    /// Sets the transient-failure rate (per mille of attempts).
    pub fn with_transients(mut self, per_mille: u16) -> ChaosConfig {
        self.transient_per_mille = per_mille.min(1000);
        self
    }

    /// Sum of all configured rates (a roll lands in at most one band,
    /// so the total is clamped to 1000 when bands would overlap).
    pub fn total_per_mille(&self) -> u16 {
        (self.timeout_per_mille + self.panic_per_mille + self.transient_per_mille).min(1000)
    }

    /// The fault injected into `(trial_id, attempt)`, if any — a pure
    /// function of the config, so every worker (and every rerun)
    /// observes the same fault schedule.
    pub fn fault_for(&self, trial_id: usize, attempt: usize) -> Option<ChaosFault> {
        let h = mix64(
            mix64(self.seed ^ CHAOS_SALT) ^ mix64(trial_id as u64) ^ ((attempt as u64) << 32),
        );
        let roll = (h % 1000) as u16;
        if roll < self.timeout_per_mille {
            Some(ChaosFault::Timeout)
        } else if roll < self.timeout_per_mille + self.panic_per_mille {
            Some(ChaosFault::Panic)
        } else if roll < self.timeout_per_mille + self.panic_per_mille + self.transient_per_mille {
            Some(ChaosFault::Transient)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rates_inject_nothing() {
        let chaos = ChaosConfig::new(1);
        for id in 0..100 {
            for attempt in 1..4 {
                assert_eq!(chaos.fault_for(id, attempt), None);
            }
        }
    }

    #[test]
    fn full_rate_injects_everywhere() {
        let chaos = ChaosConfig::new(2).with_timeouts(1000);
        for id in 0..100 {
            assert_eq!(chaos.fault_for(id, 1), Some(ChaosFault::Timeout));
        }
    }

    #[test]
    fn fault_schedule_is_a_pure_function_of_the_seed() {
        let a = ChaosConfig::new(3).with_panics(300).with_transients(300);
        let b = ChaosConfig::new(3).with_panics(300).with_transients(300);
        let c = ChaosConfig::new(4).with_panics(300).with_transients(300);
        let schedule = |cfg: &ChaosConfig| -> Vec<Option<ChaosFault>> {
            (0..200).map(|id| cfg.fault_for(id, 1)).collect()
        };
        assert_eq!(schedule(&a), schedule(&b));
        assert_ne!(schedule(&a), schedule(&c));
    }

    #[test]
    fn rates_land_near_their_nominal_frequency() {
        let chaos = ChaosConfig::new(5)
            .with_timeouts(100)
            .with_panics(100)
            .with_transients(100);
        let n = 10_000usize;
        let mut counts = [0usize; 3];
        for id in 0..n {
            match chaos.fault_for(id, 1) {
                Some(ChaosFault::Timeout) => counts[0] += 1,
                Some(ChaosFault::Panic) => counts[1] += 1,
                Some(ChaosFault::Transient) => counts[2] += 1,
                _ => {}
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            let rate = c as f64 / n as f64;
            assert!(
                (0.05..=0.15).contains(&rate),
                "band {i} rate {rate} far from nominal 0.10"
            );
        }
    }

    #[test]
    fn attempts_roll_independently() {
        // A fault on attempt 1 must not pin the same fault on attempt 2,
        // otherwise retries could never clear injected panics.
        let chaos = ChaosConfig::new(6).with_panics(500);
        let differs = (0..200).any(|id| chaos.fault_for(id, 1) != chaos.fault_for(id, 2));
        assert!(differs, "attempt number never changed the roll");
    }

    #[test]
    fn rates_are_capped_at_1000() {
        let chaos = ChaosConfig::new(7).with_timeouts(5000);
        assert_eq!(chaos.total_per_mille(), 1000);
        assert_eq!(chaos.fault_for(0, 1), Some(ChaosFault::Timeout));
    }
}
