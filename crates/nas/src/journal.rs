//! Write-ahead trial journal: crash-safe JSONL persistence for sweeps.
//!
//! The scheduler appends one [`TrialRecord`] line per terminal trial, as
//! results stream off the collector channel and *before* the in-memory
//! database is assembled — so a killed sweep loses at most the trials
//! that were still in flight. Resuming replays the journal, schedules
//! only the missing trial ids, and (because evaluation is deterministic
//! per trial and attempt) produces a database byte-identical to an
//! uninterrupted run.
//!
//! Crash consistency: a process killed mid-write leaves a torn final
//! line. [`Journal::resume`] detects it, truncates the file back to the
//! last complete record, and appends from there; a torn or corrupt line
//! *before* the final one means real corruption and is reported as an
//! error instead of silently dropped.

use crate::experiment::TrialOutcome;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// One journal line: the terminal outcome of a trial plus how many
/// attempts it took (attempts beyond the first are retries of transient
/// environment failures).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrialRecord {
    pub attempts: usize,
    pub outcome: TrialOutcome,
}

/// Append-only JSONL writer over a sweep journal file.
pub struct Journal {
    writer: BufWriter<File>,
}

impl Journal {
    /// Creates (or truncates) a fresh journal.
    pub fn create(path: &Path) -> io::Result<Journal> {
        Ok(Journal {
            writer: BufWriter::new(File::create(path)?),
        })
    }

    /// Opens `path` for appending, replaying any records already there.
    /// A torn final line (crash mid-write) is truncated away so the next
    /// append starts on a clean line boundary. Returns the journal and
    /// the replayed records in file order.
    pub fn resume(path: &Path) -> io::Result<(Journal, Vec<TrialRecord>)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut text = String::new();
        file.read_to_string(&mut text)?;
        let (records, valid_bytes) = parse_journal(&text)?;
        file.set_len(valid_bytes as u64)?;
        file.seek(SeekFrom::Start(valid_bytes as u64))?;
        Ok((
            Journal {
                writer: BufWriter::new(file),
            },
            records,
        ))
    }

    /// Appends one record and flushes it to the OS — the write-ahead
    /// guarantee the resume path depends on.
    pub fn append(&mut self, record: &TrialRecord) -> io::Result<()> {
        let line = serde_json::to_string(record)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }
}

/// Reads a journal without opening it for writing (torn final line
/// tolerated, as in [`Journal::resume`]).
pub fn read_journal(path: &Path) -> io::Result<Vec<TrialRecord>> {
    let text = std::fs::read_to_string(path)?;
    parse_journal(&text).map(|(records, _)| records)
}

/// Parses JSONL text into records plus the byte length of the valid
/// prefix (everything up to and including the last complete record).
fn parse_journal(text: &str) -> io::Result<(Vec<TrialRecord>, usize)> {
    let mut records = Vec::new();
    let mut valid_bytes = 0usize;
    let mut offset = 0usize;
    while offset < text.len() {
        let rest = &text[offset..];
        let (line, line_end, terminated) = match rest.find('\n') {
            Some(nl) => (&rest[..nl], offset + nl + 1, true),
            None => (rest, text.len(), false),
        };
        if line.trim().is_empty() {
            offset = line_end;
            if terminated {
                valid_bytes = line_end;
            }
            continue;
        }
        match serde_json::from_str::<TrialRecord>(line) {
            Ok(record) => {
                records.push(record);
                valid_bytes = line_end;
            }
            Err(e) if !terminated => {
                // Torn tail from a crash mid-append: drop it, resume
                // after the last complete record.
                let _ = e;
                break;
            }
            Err(e) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("corrupt journal line at byte {offset}: {e}"),
                ));
            }
        }
        offset = line_end;
    }
    Ok((records, valid_bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::TrialStatus;
    use crate::space::{InputCombo, TrialSpec};
    use hydronas_graph::ArchConfig;

    fn record(id: usize, attempts: usize) -> TrialRecord {
        TrialRecord {
            attempts,
            outcome: TrialOutcome {
                spec: TrialSpec {
                    id,
                    combo: InputCombo {
                        channels: 5,
                        batch_size: 8,
                    },
                    arch: ArchConfig::baseline(5),
                    kernel_size_pool: 3,
                    stride_pool: 2,
                },
                status: TrialStatus::Succeeded,
                accuracy: 90.0 + id as f64,
                fold_accuracies: vec![90.0; 5],
                latency_ms: 8.5,
                latency_std_ms: 1.0,
                per_device_ms: vec![("cortexA76cpu_tflite21".into(), 8.5)],
                memory_mb: 11.2,
                train_seconds: 100.0,
            },
        }
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("hydronas_journal_{tag}_{}", std::process::id()))
    }

    #[test]
    fn append_and_read_round_trip() {
        let path = temp_path("roundtrip");
        let mut journal = Journal::create(&path).unwrap();
        for id in 0..3 {
            journal.append(&record(id, 1 + id % 2)).unwrap();
        }
        drop(journal);
        let records = read_journal(&path).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[2], record(2, 1));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_truncates_a_torn_tail() {
        let path = temp_path("torn");
        let mut journal = Journal::create(&path).unwrap();
        journal.append(&record(0, 1)).unwrap();
        journal.append(&record(1, 2)).unwrap();
        drop(journal);
        // Simulate a crash mid-append: half a record, no newline.
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(b"{\"attempts\":3,\"outco").unwrap();
        drop(file);

        let (mut journal, replayed) = Journal::resume(&path).unwrap();
        assert_eq!(replayed.len(), 2);
        journal.append(&record(2, 1)).unwrap();
        drop(journal);
        // The torn bytes are gone; all three records parse cleanly.
        let records = read_journal(&path).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[1].attempts, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_interior_line_is_an_error() {
        let path = temp_path("corrupt");
        std::fs::write(&path, "not json at all\n{\"also\":\"broken\"}\n").unwrap();
        let err = read_journal(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_on_a_missing_file_starts_empty() {
        let path = temp_path("fresh");
        std::fs::remove_file(&path).ok();
        let (mut journal, replayed) = Journal::resume(&path).unwrap();
        assert!(replayed.is_empty());
        journal.append(&record(7, 1)).unwrap();
        drop(journal);
        assert_eq!(read_journal(&path).unwrap().len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn blank_lines_are_skipped() {
        let path = temp_path("blank");
        let mut journal = Journal::create(&path).unwrap();
        journal.append(&record(0, 1)).unwrap();
        drop(journal);
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(b"\n").unwrap();
        drop(file);
        assert_eq!(read_journal(&path).unwrap().len(), 1);
        std::fs::remove_file(&path).ok();
    }
}
