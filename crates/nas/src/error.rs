//! Typed errors for the sweep engine.
//!
//! [`SweepError`] is what [`crate::Sweep::run`] returns instead of the
//! bare `io::Error` the deprecated `run_sweep` produced: every variant
//! names the journal path (and trial, where one is implicated), and the
//! original I/O error stays reachable through `std::error::Error::source`.
//! The old `io::Result` surface is preserved by the deprecated shims via
//! `From<SweepError> for io::Error`, which keeps the historical error
//! kinds (`InvalidData` for stale journals) intact.

use std::io;
use std::path::PathBuf;

/// Why a sweep could not produce a report.
///
/// Degraded-but-successful conditions (cancellation, deadline
/// exhaustion, per-trial timeouts) are deliberately *not* errors: they
/// return a partial `SweepReport` carrying a
/// [`crate::sweep::DegradationReport`] instead.
#[derive(Debug)]
#[non_exhaustive]
pub enum SweepError {
    /// Reading or writing the write-ahead journal failed.
    Journal { path: PathBuf, source: io::Error },
    /// The journal holds a record for `trial_id` that does not match the
    /// scheduled trial set — it belongs to a different experiment
    /// configuration and replaying it would corrupt the database.
    StaleJournal { path: PathBuf, trial_id: usize },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Journal { path, source } => {
                write!(f, "sweep journal {}: {source}", path.display())
            }
            SweepError::StaleJournal { path, trial_id } => write!(
                f,
                "sweep journal {}: record for trial {trial_id} does not match the scheduled trial set",
                path.display()
            ),
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::Journal { source, .. } => Some(source),
            SweepError::StaleJournal { .. } => None,
        }
    }
}

impl From<SweepError> for io::Error {
    /// Maps back onto the historical `io::Result` surface: journal I/O
    /// keeps its original kind, stale journals keep `InvalidData` (which
    /// pre-redesign callers match on).
    fn from(e: SweepError) -> io::Error {
        match e {
            SweepError::Journal { source, .. } => source,
            SweepError::StaleJournal { trial_id, .. } => io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "journal record for trial {trial_id} does not match the scheduled trial set"
                ),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stale_journal_maps_to_invalid_data() {
        let e = SweepError::StaleJournal {
            path: PathBuf::from("/tmp/j.jsonl"),
            trial_id: 17,
        };
        assert!(e.to_string().contains("trial 17"));
        assert!(e.to_string().contains("j.jsonl"));
        let io_err: io::Error = e.into();
        assert_eq!(io_err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn journal_errors_keep_their_kind_and_source() {
        use std::error::Error;
        let e = SweepError::Journal {
            path: PathBuf::from("/nope/j.jsonl"),
            source: io::Error::new(io::ErrorKind::PermissionDenied, "denied"),
        };
        assert!(e.source().is_some());
        assert!(e.to_string().contains("denied"));
        let io_err: io::Error = e.into();
        assert_eq!(io_err.kind(), io::ErrorKind::PermissionDenied);
    }
}
