//! The experiment database: every trial's objectives and configuration,
//! with the queries behind Tables 3, 4, and 5.

use crate::space::TrialSpec;
use hydronas_latency::LatencyPrediction;
use hydronas_pareto::{pareto_front, Objective, Point};
use serde::{Deserialize, Serialize};

/// Terminal state of one scheduled trial.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TrialStatus {
    Succeeded,
    Failed(String),
}

/// One completed trial with all three objectives.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrialOutcome {
    pub spec: TrialSpec,
    pub status: TrialStatus,
    /// Mean 5-fold accuracy, percent (0 for failed trials).
    pub accuracy: f64,
    pub fold_accuracies: Vec<f64>,
    /// Mean latency across the four predictors, ms.
    pub latency_ms: f64,
    /// Std of latency across the four predictors, ms.
    pub latency_std_ms: f64,
    /// Per-device latency, ms (device name, value).
    pub per_device_ms: Vec<(String, f64)>,
    /// Serialized model size, MB.
    pub memory_mb: f64,
    /// Simulated training wall-clock, seconds.
    pub train_seconds: f64,
}

impl TrialOutcome {
    /// True when the trial produced usable objectives.
    pub fn is_valid(&self) -> bool {
        matches!(self.status, TrialStatus::Succeeded)
    }

    /// Fills latency/memory objective fields from a prediction.
    pub fn with_latency(mut self, pred: &LatencyPrediction, memory_mb: f64) -> TrialOutcome {
        self.latency_ms = pred.mean_ms;
        self.latency_std_ms = pred.std_ms;
        self.per_device_ms = pred
            .per_device
            .iter()
            .map(|(id, v)| (id.name().to_string(), *v))
            .collect();
        self.memory_mb = memory_mb;
        self
    }
}

/// Ranges of the three objectives over the valid outcomes (Table 3).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveRanges {
    pub accuracy_min: f64,
    pub accuracy_max: f64,
    pub latency_min_ms: f64,
    pub latency_max_ms: f64,
    pub memory_min_mb: f64,
    pub memory_max_mb: f64,
}

/// The objective senses of the study: maximize accuracy, minimize latency
/// and memory.
pub const OBJECTIVE_SENSES: [Objective; 3] = [
    Objective::Maximize,
    Objective::Minimize,
    Objective::Minimize,
];

/// A whole experiment's outcomes.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ExperimentDb {
    pub outcomes: Vec<TrialOutcome>,
}

impl ExperimentDb {
    /// Valid (succeeded) outcomes only — the paper's 1,717.
    pub fn valid(&self) -> Vec<&TrialOutcome> {
        self.outcomes.iter().filter(|o| o.is_valid()).collect()
    }

    /// Table 3: objective value ranges over valid outcomes.
    pub fn objective_ranges(&self) -> ObjectiveRanges {
        let valid = self.valid();
        assert!(!valid.is_empty(), "no valid outcomes");
        let fold = |init: f64, f: &dyn Fn(&TrialOutcome) -> f64, cmp: &dyn Fn(f64, f64) -> f64| {
            valid.iter().fold(init, |acc, o| cmp(acc, f(o)))
        };
        ObjectiveRanges {
            accuracy_min: fold(f64::INFINITY, &|o| o.accuracy, &f64::min),
            accuracy_max: fold(f64::NEG_INFINITY, &|o| o.accuracy, &f64::max),
            latency_min_ms: fold(f64::INFINITY, &|o| o.latency_ms, &f64::min),
            latency_max_ms: fold(f64::NEG_INFINITY, &|o| o.latency_ms, &f64::max),
            memory_min_mb: fold(f64::INFINITY, &|o| o.memory_mb, &f64::min),
            memory_max_mb: fold(f64::NEG_INFINITY, &|o| o.memory_mb, &f64::max),
        }
    }

    /// Objective points (accuracy, latency, memory) of valid outcomes,
    /// ids = trial ids.
    pub fn objective_points(&self) -> Vec<Point> {
        self.valid()
            .iter()
            .map(|o| Point::new(o.spec.id, vec![o.accuracy, o.latency_ms, o.memory_mb]))
            .collect()
    }

    /// The non-dominated outcomes (Table 4 rows), sorted by accuracy
    /// descending like the paper's table.
    pub fn pareto_outcomes(&self) -> Vec<&TrialOutcome> {
        let points = self.objective_points();
        let front = pareto_front(&points, &OBJECTIVE_SENSES);
        let mut rows: Vec<&TrialOutcome> = front
            .iter()
            .map(|p| {
                self.outcomes
                    .iter()
                    .find(|o| o.spec.id == p.id)
                    .expect("front id comes from outcomes")
            })
            .collect();
        rows.sort_by(|a, b| {
            b.accuracy
                .partial_cmp(&a.accuracy)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        rows
    }

    /// Table 4 as the paper publishes it: the union of the pool-family
    /// fronts.
    ///
    /// The paper's five rows cannot all be non-dominated under a single
    /// 3-objective dominance check (its row 1 — 96.13% / 8.19 ms /
    /// 11.18 MB — strictly dominates its pooled row 3 — 95.79% / 18.3 ms /
    /// 11.18 MB), so the published table is only consistent if the
    /// pool_choice = 0 and pool_choice = 1 families were fronted
    /// separately (matching Figure 4's red/green split). This method
    /// reproduces that protocol; [`ExperimentDb::pareto_outcomes`] is the
    /// strict single-front variant.
    pub fn pareto_outcomes_pool_grouped(&self) -> Vec<&TrialOutcome> {
        let mut rows: Vec<&TrialOutcome> = Vec::new();
        for pool_choice in [0usize, 1] {
            let points: Vec<Point> = self
                .valid()
                .iter()
                .filter(|o| o.spec.arch.pool_choice() == pool_choice)
                .map(|o| Point::new(o.spec.id, vec![o.accuracy, o.latency_ms, o.memory_mb]))
                .collect();
            let front = pareto_front(&points, &OBJECTIVE_SENSES);
            rows.extend(front.iter().map(|p| {
                self.outcomes
                    .iter()
                    .find(|o| o.spec.id == p.id)
                    .expect("front id comes from outcomes")
            }));
        }
        rows.sort_by(|a, b| {
            b.accuracy
                .partial_cmp(&a.accuracy)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        rows
    }

    /// Outcome for one trial id.
    pub fn by_id(&self, id: usize) -> Option<&TrialOutcome> {
        self.outcomes.iter().find(|o| o.spec.id == id)
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("experiment db serializes")
    }

    /// Loads from JSON.
    pub fn from_json(json: &str) -> Result<ExperimentDb, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{InputCombo, TrialSpec};
    use hydronas_graph::ArchConfig;

    fn outcome(id: usize, acc: f64, lat: f64, mem: f64, ok: bool) -> TrialOutcome {
        TrialOutcome {
            spec: TrialSpec {
                id,
                combo: InputCombo {
                    channels: 5,
                    batch_size: 8,
                },
                arch: ArchConfig::baseline(5),
                kernel_size_pool: 3,
                stride_pool: 2,
            },
            status: if ok {
                TrialStatus::Succeeded
            } else {
                TrialStatus::Failed("environment failure".into())
            },
            accuracy: acc,
            fold_accuracies: vec![acc; 5],
            latency_ms: lat,
            latency_std_ms: 1.0,
            per_device_ms: vec![],
            memory_mb: mem,
            train_seconds: 100.0,
        }
    }

    #[test]
    fn valid_filters_failures() {
        let db = ExperimentDb {
            outcomes: vec![
                outcome(0, 90.0, 10.0, 11.0, true),
                outcome(1, 0.0, 0.0, 0.0, false),
            ],
        };
        assert_eq!(db.valid().len(), 1);
    }

    #[test]
    fn ranges_cover_valid_only() {
        let db = ExperimentDb {
            outcomes: vec![
                outcome(0, 90.0, 10.0, 11.0, true),
                outcome(1, 95.0, 30.0, 44.0, true),
                outcome(2, 0.0, 0.0, 0.0, false),
            ],
        };
        let r = db.objective_ranges();
        assert_eq!(r.accuracy_min, 90.0);
        assert_eq!(r.accuracy_max, 95.0);
        assert_eq!(r.latency_min_ms, 10.0);
        assert_eq!(r.memory_max_mb, 44.0);
    }

    #[test]
    fn pareto_outcomes_sorted_by_accuracy() {
        let db = ExperimentDb {
            outcomes: vec![
                outcome(0, 96.0, 8.0, 11.0, true),  // front
                outcome(1, 90.0, 30.0, 44.0, true), // dominated
                outcome(2, 94.0, 5.0, 11.0, true),  // front (faster)
                outcome(3, 97.0, 40.0, 11.0, true), // front (most accurate)
            ],
        };
        let front = db.pareto_outcomes();
        let ids: Vec<usize> = front.iter().map(|o| o.spec.id).collect();
        assert_eq!(ids, vec![3, 0, 2]);
    }

    #[test]
    fn json_roundtrip() {
        let db = ExperimentDb {
            outcomes: vec![outcome(0, 90.0, 10.0, 11.0, true)],
        };
        let back = ExperimentDb::from_json(&db.to_json()).unwrap();
        assert_eq!(back.outcomes.len(), 1);
        assert_eq!(back.outcomes[0].accuracy, 90.0);
        assert_eq!(back.outcomes[0].spec.arch, ArchConfig::baseline(5));
    }

    #[test]
    #[should_panic(expected = "no valid outcomes")]
    fn ranges_of_empty_db_panic() {
        let db = ExperimentDb::default();
        let _ = db.objective_ranges();
    }
}

/// Per-input-combination summary: the study's six benchmark variants each
/// get their own accuracy statistics and best configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ComboSummary {
    pub combo: crate::space::InputCombo,
    pub valid_trials: usize,
    pub accuracy_min: f64,
    pub accuracy_mean: f64,
    pub accuracy_max: f64,
    /// Trial id of the best-accuracy configuration.
    pub best_trial_id: usize,
    /// Simulated wall-clock of the combination's trials, seconds.
    pub wall_clock_s: f64,
}

impl ExperimentDb {
    /// Summaries for every input combination present in the database, in
    /// the paper's report order.
    pub fn summaries_by_combo(&self) -> Vec<ComboSummary> {
        crate::space::InputCombo::all()
            .into_iter()
            .filter_map(|combo| {
                let rows: Vec<&TrialOutcome> = self
                    .valid()
                    .into_iter()
                    .filter(|o| o.spec.combo == combo)
                    .collect();
                if rows.is_empty() {
                    return None;
                }
                let accs: Vec<f64> = rows.iter().map(|o| o.accuracy).collect();
                let best = rows
                    .iter()
                    .max_by(|a, b| {
                        a.accuracy
                            .partial_cmp(&b.accuracy)
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .expect("non-empty rows");
                let wall_clock_s = self
                    .outcomes
                    .iter()
                    .filter(|o| o.spec.combo == combo)
                    .map(|o| o.train_seconds)
                    .sum();
                Some(ComboSummary {
                    combo,
                    valid_trials: rows.len(),
                    accuracy_min: accs.iter().cloned().fold(f64::INFINITY, f64::min),
                    accuracy_mean: accs.iter().sum::<f64>() / accs.len() as f64,
                    accuracy_max: accs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                    best_trial_id: best.spec.id,
                    wall_clock_s,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod combo_tests {
    use super::*;
    use crate::evaluator::SurrogateEvaluator;
    use crate::scheduler::{run_full_grid, SchedulerConfig};

    #[test]
    fn six_combo_summaries_partition_the_grid() {
        let db = run_full_grid(&SurrogateEvaluator::default(), &SchedulerConfig::default());
        let summaries = db.summaries_by_combo();
        assert_eq!(summaries.len(), 6);
        let total: usize = summaries.iter().map(|s| s.valid_trials).sum();
        assert_eq!(total, db.valid().len());
        for s in &summaries {
            assert!(s.accuracy_min <= s.accuracy_mean);
            assert!(s.accuracy_mean <= s.accuracy_max);
            assert!(s.wall_clock_s > 0.0);
            let best = db.by_id(s.best_trial_id).unwrap();
            assert_eq!(best.spec.combo, s.combo);
            assert!((best.accuracy - s.accuracy_max).abs() < 1e-12);
        }
        // 7-channel variants beat 5-channel ones at every batch size
        // (Table 5's pattern extends to the whole grid).
        for batch in [8, 16, 32] {
            let get = |ch: usize| {
                summaries
                    .iter()
                    .find(|s| s.combo.channels == ch && s.combo.batch_size == batch)
                    .unwrap()
                    .accuracy_mean
            };
            assert!(get(7) > get(5), "batch {batch}");
        }
    }

    #[test]
    fn empty_combos_are_skipped() {
        let db = ExperimentDb::default();
        assert!(db.summaries_by_combo().is_empty());
    }
}
