//! # hydronas-nas
//!
//! The hardware-aware NAS engine — HydroNAS's substitute for NNI Retiarii.
//!
//! * [`space`] — the paper's search space (Figure 2): 288 stem
//!   configurations per input combination, six input combinations
//!   (channels x batch size), 1,728 enumerated trials.
//! * [`evaluator`] — pluggable trial evaluation: [`RealTrainer`] actually
//!   trains the candidate CNN with 5-fold cross-validation on synthetic
//!   drainage tiles; [`SurrogateEvaluator`] is the deterministic
//!   training-dynamics surrogate calibrated against the paper's Table 5
//!   anchors (used for full-scale sweeps where A100-weeks are not
//!   available).
//! * [`sweep`] — the typed, builder-style public API: [`Sweep::builder`]
//!   configures trials, evaluator, retry/backoff policy, journaling,
//!   cancellation, deadlines, and chaos injection, and returns a
//!   [`SweepReport`] carrying a structured [`DegradationReport`].
//! * [`scheduler`] — thread-pool trial execution with deterministic
//!   failure injection (the paper's 1,728 - 11 = 1,717 valid outcomes),
//!   bounded retries of transient environment failures, cooperative
//!   cancellation, simulated-clock deadlines, and journaled
//!   crash/resume.
//! * [`chaos`] — deterministic fault injection (timeouts, panics,
//!   transient failures) for robustness tests.
//! * [`error`] — the typed [`SweepError`] surface.
//! * [`metrics_cache`] — memoized per-architecture latency/memory
//!   metrics: the 1,728-trial grid holds only 360 distinct graphs
//!   (batch size never reaches the graph, pool-less rows enumerate
//!   redundant pool fields), so each is built once and served
//!   lock-free to the worker pool.
//! * [`journal`] — write-ahead JSONL trial journal: a killed sweep
//!   resumes by replaying finished trials and scheduling only the rest.
//! * [`progress`] — sweep observability: live counters, per-trial wall
//!   time, and a simulated-clock ETA through pluggable sinks.
//! * [`experiment`] — the experiment database: outcomes, objective
//!   extraction, Table 3/4/5 queries, JSON persistence.
//! * [`strategies`] — beyond the paper's grid: random search and
//!   regularized evolution over the same space.
//! * [`clock`] — the simulated wall-clock accounting reproducing the
//!   paper's Section 5 runtime observations.

pub mod analysis;
pub mod chaos;
pub mod clock;
pub mod error;
pub mod evaluator;
pub mod experiment;
pub mod halving;
pub mod journal;
pub mod metrics_cache;
pub mod nsga2;
pub mod progress;
pub mod scheduler;
pub mod space;
pub mod strategies;
pub mod surrogate;
pub mod sweep;

pub use analysis::{
    main_effect, objective_correlations, pearson, sensitivity, sensitivity_table, spearman, Factor,
    MainEffect, Response,
};
pub use chaos::{ChaosConfig, ChaosFault};
pub use clock::{
    experiment_wall_clock, makespan_lpt, profile_trial, trial_duration_s, TrialProfile,
};
pub use error::SweepError;
pub use evaluator::{
    EvalOutcome, Evaluator, FailureCause, RealTrainer, SurrogateEvaluator, TrialFailure,
};
pub use experiment::{ComboSummary, ExperimentDb, TrialOutcome, TrialStatus};
pub use halving::{successive_halving, HalvingConfig, HalvingResult, Rung};
pub use hydronas_nn::CancelToken;
pub use journal::{read_journal, Journal, TrialRecord};
pub use metrics_cache::{ArchMetrics, GraphMetricsCache, MetricsError};
pub use nsga2::{nsga2, Individual, Nsga2Config, Nsga2Result};
pub use progress::{CollectingSink, ProgressSink, StderrTicker, SweepEvent, SweepStats};
#[allow(deprecated)]
pub use scheduler::{
    attempt_seed, injected_failure_ids, run_experiment, run_full_grid, run_sweep,
    transient_failure_ids, SchedulerConfig, SweepOptions, SweepReport,
};
pub use space::{InputCombo, SearchSpace, TrialSpec};
pub use strategies::{random_search, regularized_evolution, EvolutionConfig, SearchResult};
pub use sweep::{DegradationReport, RetryPolicy, Sweep, SweepBuilder};
