//! The search space (paper Figure 2) and its enumeration.

use hydronas_graph::{ArchConfig, PoolConfig};
use serde::{Deserialize, Serialize};

/// One input-data combination: channel mode x training batch size.
/// The paper benchmarks six: {5, 7} channels x {8, 16, 32} batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct InputCombo {
    pub channels: usize,
    pub batch_size: usize,
}

impl InputCombo {
    /// The six combinations of the paper, in report order.
    pub fn all() -> Vec<InputCombo> {
        let mut combos = Vec::with_capacity(6);
        for channels in [5, 7] {
            for batch_size in [8, 16, 32] {
                combos.push(InputCombo {
                    channels,
                    batch_size,
                });
            }
        }
        combos
    }
}

/// The mutable stem dimensions of Figure 2.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchSpace {
    pub kernel_sizes: Vec<usize>,
    pub strides: Vec<usize>,
    pub paddings: Vec<usize>,
    pub pool_choices: Vec<usize>,
    pub pool_kernels: Vec<usize>,
    pub pool_strides: Vec<usize>,
    pub initial_features: Vec<usize>,
}

impl Default for SearchSpace {
    fn default() -> SearchSpace {
        SearchSpace::paper()
    }
}

impl SearchSpace {
    /// The paper's space: 2 x 2 x 3 x (2 x 2 x 2) x 3 = 288 configurations.
    pub fn paper() -> SearchSpace {
        SearchSpace {
            kernel_sizes: vec![3, 7],
            strides: vec![1, 2],
            paddings: vec![0, 1, 3],
            pool_choices: vec![0, 1],
            pool_kernels: vec![2, 3],
            pool_strides: vec![1, 2],
            initial_features: vec![32, 48, 64],
        }
    }

    /// Number of enumerated configurations (counting `no pool` once per
    /// pool-kernel/stride combination, as NNI's grid does).
    pub fn cardinality(&self) -> usize {
        self.kernel_sizes.len()
            * self.strides.len()
            * self.paddings.len()
            * self.pool_choices.len()
            * self.pool_kernels.len()
            * self.pool_strides.len()
            * self.initial_features.len()
    }

    /// Enumerates every configuration for a channel count, in a stable
    /// order. `pool_choice = 0` rows keep their (irrelevant) pool
    /// kernel/stride values, mirroring the paper's NNI grid where those
    /// configurations coincide.
    pub fn enumerate(&self, channels: usize) -> Vec<ArchConfig> {
        let mut out = Vec::with_capacity(self.cardinality());
        for &kernel_size in &self.kernel_sizes {
            for &stride in &self.strides {
                for &padding in &self.paddings {
                    for &feat in &self.initial_features {
                        for &pool_choice in &self.pool_choices {
                            for &pool_kernel in &self.pool_kernels {
                                for &pool_stride in &self.pool_strides {
                                    let pool = (pool_choice == 1).then_some(PoolConfig {
                                        kernel: pool_kernel,
                                        stride: pool_stride,
                                    });
                                    out.push(ArchConfig {
                                        in_channels: channels,
                                        kernel_size,
                                        stride,
                                        padding,
                                        pool,
                                        initial_features: feat,
                                        num_classes: 2,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// One scheduled trial: a configuration paired with its input combination
/// and a stable id.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrialSpec {
    pub id: usize,
    pub combo: InputCombo,
    pub arch: ArchConfig,
    /// Redundant pool kernel/stride as enumerated (kept even for
    /// `pool = None` rows so Table 4's columns can be reported verbatim).
    pub kernel_size_pool: usize,
    pub stride_pool: usize,
}

impl TrialSpec {
    /// Stable key for seeding and persistence.
    pub fn key(&self) -> String {
        format!(
            "b{}-{}-pk{}-ps{}",
            self.combo.batch_size,
            self.arch.key(),
            self.kernel_size_pool,
            self.stride_pool
        )
    }
}

/// Enumerates the full experiment: all six input combinations over the
/// whole space — the paper's 1,728 scheduled trials.
pub fn full_grid(space: &SearchSpace) -> Vec<TrialSpec> {
    let mut trials = Vec::with_capacity(6 * space.cardinality());
    let mut id = 0usize;
    for combo in InputCombo::all() {
        // Re-enumerate with explicit pool columns.
        for &kernel_size in &space.kernel_sizes {
            for &stride in &space.strides {
                for &padding in &space.paddings {
                    for &feat in &space.initial_features {
                        for &pool_choice in &space.pool_choices {
                            for &pool_kernel in &space.pool_kernels {
                                for &pool_stride in &space.pool_strides {
                                    let pool = (pool_choice == 1).then_some(PoolConfig {
                                        kernel: pool_kernel,
                                        stride: pool_stride,
                                    });
                                    trials.push(TrialSpec {
                                        id,
                                        combo,
                                        arch: ArchConfig {
                                            in_channels: combo.channels,
                                            kernel_size,
                                            stride,
                                            padding,
                                            pool,
                                            initial_features: feat,
                                            num_classes: 2,
                                        },
                                        kernel_size_pool: pool_kernel,
                                        stride_pool: pool_stride,
                                    });
                                    id += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    trials
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_space_has_288_configurations() {
        let space = SearchSpace::paper();
        assert_eq!(space.cardinality(), 288);
        assert_eq!(space.enumerate(5).len(), 288);
        assert_eq!(space.enumerate(7).len(), 288);
    }

    #[test]
    fn six_input_combinations() {
        let combos = InputCombo::all();
        assert_eq!(combos.len(), 6);
        assert_eq!(
            combos[0],
            InputCombo {
                channels: 5,
                batch_size: 8
            }
        );
        assert_eq!(
            combos[5],
            InputCombo {
                channels: 7,
                batch_size: 32
            }
        );
    }

    #[test]
    fn full_grid_is_1728_trials() {
        let trials = full_grid(&SearchSpace::paper());
        assert_eq!(trials.len(), 1728, "the paper's 6 x 288 scheduled trials");
        // Ids are dense and unique.
        for (i, t) in trials.iter().enumerate() {
            assert_eq!(t.id, i);
        }
    }

    #[test]
    fn trial_keys_are_unique() {
        let trials = full_grid(&SearchSpace::paper());
        let mut keys: Vec<String> = trials.iter().map(|t| t.key()).collect();
        keys.sort();
        let before = keys.len();
        keys.dedup();
        assert_eq!(keys.len(), before, "duplicate trial keys");
    }

    #[test]
    fn no_pool_rows_duplicate_architectures() {
        // The 'no pool' option renders pool kernel/stride irrelevant: the
        // 288 rows collapse to 36 + 144 = 180 distinct architectures.
        let space = SearchSpace::paper();
        let mut archs = space.enumerate(5);
        archs.sort_by_key(|a| a.key());
        archs.dedup();
        assert_eq!(archs.len(), 180);
    }

    #[test]
    fn enumeration_covers_baseline_and_pareto_configs() {
        let archs = SearchSpace::paper().enumerate(5);
        assert!(archs.contains(&ArchConfig::baseline(5)));
        // Table 4 row 4: 5ch k3 s2 p1 no-pool f32.
        let pareto = ArchConfig {
            in_channels: 5,
            kernel_size: 3,
            stride: 2,
            padding: 1,
            pool: None,
            initial_features: 32,
            num_classes: 2,
        };
        assert!(archs.contains(&pareto));
    }

    #[test]
    fn enumeration_order_is_stable() {
        let a = full_grid(&SearchSpace::paper());
        let b = full_grid(&SearchSpace::paper());
        assert_eq!(a, b);
    }
}
