//! The training-dynamics surrogate: a deterministic, seeded model of the
//! 5-fold mean accuracy a candidate would reach after 5 training epochs.
//!
//! Full-fidelity reproduction would need ~10^13 training FLOPs per trial
//! fold on an A100; the surrogate replaces that while preserving exactly
//! what the downstream Pareto analysis consumes — the *ordering and
//! spread* of accuracies across the space. It is anchored at the paper's
//! measured baselines (Table 5 is reproduced exactly at zero arch delta)
//! and perturbs them with effects whose signs come from the paper's own
//! observations (Section 4: small kernels, minimal padding, larger
//! strides, and fewer channels-per-filter win on 32 m tiles; Table 5:
//! batch 16 best, batch 32 fragile on 5-channel inputs).

use hydronas_graph::ArchConfig;
use hydronas_tensor::TensorRng;

/// Per-fold accuracy noise (sigma, percentage points). Five-fold means
/// then vary by ~sigma/sqrt(5).
pub const FOLD_NOISE_SIGMA: f64 = 0.55;

/// Table 5 anchors: measured baseline accuracy per (channels, batch).
pub fn baseline_anchor(channels: usize, batch_size: usize) -> f64 {
    match (channels, batch_size) {
        (5, 8) => 92.90,
        (5, 16) => 93.60,
        (5, 32) => 89.67,
        (7, 8) => 94.76,
        (7, 16) => 95.37,
        (7, 32) => 94.51,
        _ => panic!("unsupported input combination ({channels} ch, batch {batch_size})"),
    }
}

/// Total stem downsampling factor: conv stride x pool stride (if pooling).
pub fn stem_downsample(arch: &ArchConfig) -> usize {
    arch.stride * arch.pool.map_or(1, |p| p.stride)
}

/// Deterministic architecture effect in percentage points, relative to the
/// stock ResNet-18 stem (which scores 0 by construction).
pub fn arch_delta(arch: &ArchConfig) -> f64 {
    let mut delta = 0.0;

    // Kernel: 7x7 stems over-smooth 32 m context windows; 3x3 preserves
    // the embankment/channel edge (paper Figure 4: all winners use k=3).
    if arch.kernel_size == 3 {
        delta += 0.25;
    }

    // Padding interacts with the kernel: unpadded large kernels crop the
    // centered crossing signature hard.
    delta += match (arch.kernel_size, arch.padding) {
        (7, 0) => -10.0,
        (7, 1) => -1.5,
        (7, 3) => 0.0,
        (3, 0) => -3.5,
        (3, 1) => 0.15,
        (3, 3) => -0.8,
        _ => 0.0,
    };

    // Stem downsampling: ds=2 is the sweet spot at tile scale; ds=1 blows
    // up the effective receptive field mismatch and overfits in 5 epochs;
    // ds=4 (the stock stem) loses fine structure but remains workable.
    delta += match stem_downsample(arch) {
        1 => -3.5,
        2 => 0.15,
        _ => 0.0,
    };

    // Non-strided pooling is mild smoothing; kernel-2 pooling slightly
    // noisier than kernel-3.
    if let Some(pool) = arch.pool {
        if pool.kernel == 2 {
            delta -= 0.1;
        }
    }

    // Width: 12k tiles + 5 epochs saturate by f=32; wider adds nothing
    // and lightly overfits.
    // Width: 12k tiles in 5 epochs favour the narrow model; the wide
    // stock width mildly overfits (and f=32 is what every Table 4 row
    // uses).
    delta += match arch.initial_features {
        32 => 0.55,
        48 => 0.15,
        _ => 0.0,
    };

    delta
}

/// Deterministic 5-fold accuracies for one trial, in percent.
///
/// `trial_seed` must be stable per trial so reruns reproduce bit-for-bit.
pub fn surrogate_fold_accuracies(
    arch: &ArchConfig,
    batch_size: usize,
    folds: usize,
    trial_seed: u64,
) -> Vec<f64> {
    let base = baseline_anchor(arch.in_channels, batch_size) + arch_delta(arch);
    let mut rng = TensorRng::seed_from_u64(trial_seed);
    (0..folds)
        .map(|_| {
            let noisy = base + FOLD_NOISE_SIGMA * f64::from(rng.normal());
            noisy.clamp(50.0, 99.5)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydronas_graph::{PoolConfig, BASELINE_RESNET18};

    fn mean(v: &[f64]) -> f64 {
        v.iter().sum::<f64>() / v.len() as f64
    }

    #[test]
    fn baseline_arch_scores_zero_delta() {
        assert_eq!(arch_delta(&BASELINE_RESNET18), 0.0);
    }

    #[test]
    fn anchors_match_table5() {
        assert_eq!(baseline_anchor(5, 8), 92.90);
        assert_eq!(baseline_anchor(7, 16), 95.37);
        assert_eq!(baseline_anchor(7, 32), 94.51);
    }

    #[test]
    #[should_panic(expected = "unsupported input combination")]
    fn unknown_combo_panics() {
        let _ = baseline_anchor(3, 8);
    }

    #[test]
    fn best_known_config_beats_baseline_modestly() {
        // Table 4 row 1: 7ch b16, k3 s2 p1 no-pool f32 reaches 96.13 vs
        // the 95.37 baseline: a sub-1.5-point win.
        let winner = ArchConfig {
            in_channels: 7,
            kernel_size: 3,
            stride: 2,
            padding: 1,
            pool: None,
            initial_features: 32,
            num_classes: 2,
        };
        let delta = arch_delta(&winner);
        assert!(delta > 0.5 && delta < 2.5, "delta {delta}");
        let acc = baseline_anchor(7, 16) + delta;
        assert!((95.8..97.2).contains(&acc), "acc {acc}");
    }

    #[test]
    fn worst_config_lands_near_paper_minimum() {
        // Table 3 minimum: 76.19%. Worst combo: 5ch b32 with an unpadded
        // 7x7 stride-1 no-pool stem.
        let worst = ArchConfig {
            in_channels: 5,
            kernel_size: 7,
            stride: 1,
            padding: 0,
            pool: None,
            initial_features: 64,
            num_classes: 2,
        };
        let acc = baseline_anchor(5, 32) + arch_delta(&worst);
        assert!((74.0..79.0).contains(&acc), "acc {acc}");
    }

    #[test]
    fn stem_downsample_accounts_for_pool() {
        let mut arch = BASELINE_RESNET18;
        assert_eq!(stem_downsample(&arch), 4); // stride 2 x pool stride 2
        arch.pool = Some(PoolConfig {
            kernel: 3,
            stride: 1,
        });
        assert_eq!(stem_downsample(&arch), 2);
        arch.pool = None;
        assert_eq!(stem_downsample(&arch), 2);
        arch.stride = 1;
        assert_eq!(stem_downsample(&arch), 1);
    }

    #[test]
    fn fold_accuracies_are_deterministic_and_spread() {
        let arch = BASELINE_RESNET18;
        let a = surrogate_fold_accuracies(&arch, 8, 5, 42);
        let b = surrogate_fold_accuracies(&arch, 8, 5, 42);
        assert_eq!(a, b);
        let c = surrogate_fold_accuracies(&arch, 8, 5, 43);
        assert_ne!(a, c);
        assert_eq!(a.len(), 5);
        // Folds differ from each other (noise present).
        assert!(a.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-9));
        // Mean sits near the anchor.
        assert!((mean(&a) - 92.9).abs() < 1.5, "mean {}", mean(&a));
    }

    #[test]
    fn seven_channels_beat_five_on_average() {
        let make = |ch: usize| ArchConfig {
            in_channels: ch,
            ..BASELINE_RESNET18
        };
        for batch in [8, 16, 32] {
            let acc5 = baseline_anchor(5, batch) + arch_delta(&make(5));
            let acc7 = baseline_anchor(7, batch) + arch_delta(&make(7));
            assert!(acc7 > acc5, "batch {batch}");
        }
    }

    #[test]
    fn batch16_is_the_sweet_spot() {
        for ch in [5, 7] {
            let b16 = baseline_anchor(ch, 16);
            assert!(b16 > baseline_anchor(ch, 8));
            assert!(b16 > baseline_anchor(ch, 32));
        }
    }

    #[test]
    fn accuracies_stay_clamped() {
        let worst = ArchConfig {
            in_channels: 5,
            kernel_size: 7,
            stride: 1,
            padding: 0,
            pool: None,
            initial_features: 64,
            num_classes: 2,
        };
        for seed in 0..50 {
            for acc in surrogate_fold_accuracies(&worst, 32, 5, seed) {
                assert!((50.0..=99.5).contains(&acc));
            }
        }
    }
}
