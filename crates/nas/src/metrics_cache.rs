//! Memoized per-architecture graph metrics for the sweep hot path.
//!
//! The full grid schedules 1,728 trials, but a trial's latency
//! prediction and serialized model size depend only on the architecture
//! (batch size never reaches the graph, and pool-less rows enumerate
//! redundant pool kernel/stride values), so only 360 distinct graphs
//! exist — a 4.8x collapse. The cache computes each one once and
//! serves the rest lock-free: the key map is frozen at construction
//! (pre-seeded from the trial list), and each entry is a [`OnceLock`]
//! that the first arriving worker initializes while later readers take
//! the fast already-initialized path — no mutex, no contention on hits.
//!
//! Failures are cached too: `ModelGraph::from_arch` errors are stored
//! typed ([`GraphError`] inside a [`MetricsError`] that adds the
//! architecture key), and the scheduler renders the *inner* graph error
//! when journaling — so a cached sweep's failure statuses are
//! byte-identical to an uncached one.

use hydronas_graph::{serialized_size_bytes, ArchConfig, GraphError, ModelGraph};
use hydronas_latency::{predict_all, LatencyPrediction};
use std::collections::HashMap;
use std::sync::OnceLock;

/// The graph-derived objectives of one architecture: everything
/// `run_trial` needs that does not depend on the evaluation seed or
/// batch size.
#[derive(Clone, Debug, PartialEq)]
pub struct ArchMetrics {
    /// Per-device latency prediction.
    pub latency: LatencyPrediction,
    /// Serialized (ONNX-like) model size in MB.
    pub memory_mb: f64,
}

/// Why a cached metrics lookup failed: the graph would not build for
/// this architecture.
///
/// Carries the architecture key for context; the inner [`GraphError`]
/// stays reachable (as a field and through `std::error::Error::source`)
/// so callers that need the historical `from_arch` error string —
/// the journal format — can render `err.graph` directly.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsError {
    /// The cache key of the offending architecture.
    pub arch: String,
    /// The graph-construction failure.
    pub graph: GraphError,
}

impl std::fmt::Display for MetricsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "architecture {}: {}", self.arch, self.graph)
    }
}

impl std::error::Error for MetricsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.graph)
    }
}

/// Computes the metrics for one architecture, or the graph-construction
/// error (stored typed; its `Display` is exactly the `from_arch` error).
fn compute(arch: &ArchConfig, input_hw: usize) -> Result<ArchMetrics, GraphError> {
    let graph = ModelGraph::from_arch(arch, input_hw)?;
    Ok(ArchMetrics {
        latency: predict_all(&graph),
        memory_mb: serialized_size_bytes(&graph) as f64 / 1e6,
    })
}

/// Everything that distinguishes one graph construction from another
/// within a sweep: the architecture key plus the classifier width,
/// which [`ArchConfig::key`] does not encode.
fn cache_key(arch: &ArchConfig) -> String {
    format!("{}-nc{}", arch.key(), arch.num_classes)
}

/// Shared, read-mostly map from architecture key to lazily computed
/// metrics. Construct once per sweep ([`GraphMetricsCache::for_trials`])
/// and share by reference across the worker pool.
pub struct GraphMetricsCache {
    input_hw: usize,
    entries: HashMap<String, OnceLock<Result<ArchMetrics, GraphError>>>,
}

impl GraphMetricsCache {
    /// Pre-seeds one (empty) entry per distinct architecture in the
    /// trial list. The map never grows afterwards, which is what makes
    /// concurrent reads safe without a lock around the map itself.
    pub fn for_trials<'a>(
        trials: impl IntoIterator<Item = &'a crate::space::TrialSpec>,
        input_hw: usize,
    ) -> GraphMetricsCache {
        let entries = trials
            .into_iter()
            .map(|t| (cache_key(&t.arch), OnceLock::new()))
            .collect();
        GraphMetricsCache { input_hw, entries }
    }

    /// Number of distinct architectures the cache was seeded with.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the cache holds no architectures.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns the metrics for `arch`, computing them at most once per
    /// architecture. An architecture outside the seeded set (possible
    /// only if callers evaluate trials the cache was not built from) is
    /// computed directly, uncached — correctness never depends on the
    /// seeding being complete.
    pub fn get(&self, arch: &ArchConfig) -> Result<ArchMetrics, MetricsError> {
        let key = cache_key(arch);
        let wrap = |e: &GraphError| MetricsError {
            arch: key.clone(),
            graph: e.clone(),
        };
        let Some(cell) = self.entries.get(&key) else {
            hydronas_telemetry::add("nas.graph_cache.misses", 1);
            return compute(arch, self.input_hw).map_err(|e| wrap(&e));
        };
        let mut computed = false;
        let result = cell.get_or_init(|| {
            computed = true;
            compute(arch, self.input_hw)
        });
        if computed {
            hydronas_telemetry::add("nas.graph_cache.misses", 1);
        } else {
            hydronas_telemetry::add("nas.graph_cache.hits", 1);
        }
        result.clone().map_err(|e| wrap(&e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{full_grid, SearchSpace};

    #[test]
    fn full_grid_collapses_to_360_distinct_graphs() {
        let trials = full_grid(&SearchSpace::paper());
        assert_eq!(trials.len(), 1728);
        let cache = GraphMetricsCache::for_trials(&trials, 32);
        // The three batch sizes fold away (1728 -> 576), and the four
        // redundant pool kernel/stride enumerations of every pool-less
        // stem fold with them: per channel count, 36 conv stems x (1
        // pool-less + 4 pooled) = 180 architectures.
        assert_eq!(cache.len(), 360);
    }

    #[test]
    fn cached_metrics_equal_direct_computation() {
        let trials: Vec<_> = full_grid(&SearchSpace::paper())
            .into_iter()
            .take(6)
            .collect();
        let cache = GraphMetricsCache::for_trials(&trials, 32);
        for t in &trials {
            let cached = cache.get(&t.arch).map_err(|e| e.graph);
            let direct = compute(&t.arch, 32);
            assert_eq!(cached, direct, "trial {}", t.id);
            // Second read serves the memoized value.
            assert_eq!(cache.get(&t.arch).map_err(|e| e.graph), cached);
        }
    }

    #[test]
    fn unseeded_architectures_fall_back_to_direct_compute() {
        let cache = GraphMetricsCache::for_trials([], 32);
        assert!(cache.is_empty());
        let arch = ArchConfig::baseline(5);
        assert_eq!(cache.get(&arch).map_err(|e| e.graph), compute(&arch, 32));
    }

    #[test]
    fn graph_errors_are_cached_verbatim() {
        // kernel 7, padding 0, stride 2 on a tiny input shrinks below
        // 1x1 somewhere in the stack — from_arch rejects it. Whatever
        // the message, the cache must return it unchanged, twice.
        let mut trials: Vec<_> = full_grid(&SearchSpace::paper())
            .into_iter()
            .take(1)
            .collect();
        trials[0].arch.kernel_size = 7;
        trials[0].arch.padding = 0;
        trials[0].arch.stride = 2;
        let input_hw = 4;
        let direct = compute(&trials[0].arch, input_hw);
        let direct_err = direct.expect_err("test premise: this graph must not build");
        let cache = GraphMetricsCache::for_trials(&trials, input_hw);
        for _ in 0..2 {
            let err = cache
                .get(&trials[0].arch)
                .expect_err("cached result must also fail");
            // The inner graph error is the journal-format string: it
            // must be byte-identical to the uncached computation.
            assert_eq!(err.graph, direct_err);
            assert_eq!(err.graph.to_string(), direct_err.to_string());
            // The typed wrapper adds arch context on top.
            assert!(err.to_string().contains(&err.arch), "{err}");
            assert!(err.to_string().contains(&direct_err.to_string()), "{err}");
            assert!(std::error::Error::source(&err).is_some());
        }
    }
}
