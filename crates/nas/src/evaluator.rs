//! Trial evaluators: the pluggable "performance estimation" leg of NAS.

use crate::clock::trial_duration_s;
use crate::space::TrialSpec;
use crate::surrogate::surrogate_fold_accuracies;
use hydronas_geodata::{build_dataset, ChannelMode, Region};
use hydronas_graph::ModelGraph;
use hydronas_nn::{kfold_cross_validate_with_cancel, CancelToken, Dataset, TrainConfig};
use serde::{Deserialize, Serialize};

/// Why a trial produced no outcome.
///
/// The journal serializes failures through their `Display` rendering,
/// so every `Display` string here is part of the on-disk format: the
/// pre-existing variants must render byte-identically forever, and new
/// variants (the enum is `#[non_exhaustive]`) only ever *add* strings.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum TrialFailure {
    /// The stem collapsed the feature map (invalid configuration).
    InvalidArchitecture(String),
    /// Simulated environment failure (the paper's 11 lost NNI trials).
    EnvironmentFailure,
    /// Training diverged to non-finite loss.
    Diverged,
    /// The trial's simulated training time exceeded the per-trial
    /// deadline (`limit_s` seconds on the simulated clock).
    Timeout { limit_s: f64 },
    /// A [`CancelToken`] fired before or while the trial ran. Cancelled
    /// outcomes never reach the journal or the database — they are
    /// reported only through the sweep's `DegradationReport`, which is
    /// what keeps cancel-then-resume byte-identical to an uninterrupted
    /// run.
    Cancelled,
    /// The evaluator panicked; the payload is the captured panic message.
    /// Treated as transient (retried with a fresh attempt seed).
    Panicked(String),
}

impl std::fmt::Display for TrialFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrialFailure::InvalidArchitecture(why) => write!(f, "invalid architecture: {why}"),
            TrialFailure::EnvironmentFailure => write!(f, "environment failure"),
            TrialFailure::Diverged => write!(f, "training diverged"),
            TrialFailure::Timeout { limit_s } => {
                write!(f, "trial timeout: exceeded {limit_s} s simulated budget")
            }
            TrialFailure::Cancelled => write!(f, "cancelled"),
            TrialFailure::Panicked(msg) => write!(f, "panicked: {msg}"),
        }
    }
}

impl TrialFailure {
    /// The coarse cause bucket this failure belongs to.
    pub fn cause(&self) -> FailureCause {
        match self {
            TrialFailure::InvalidArchitecture(_) | TrialFailure::Diverged => FailureCause::Invalid,
            TrialFailure::EnvironmentFailure | TrialFailure::Panicked(_) => FailureCause::Transient,
            TrialFailure::Timeout { .. } => FailureCause::Timeout,
            TrialFailure::Cancelled => FailureCause::Cancelled,
        }
    }

    /// True when retrying with a fresh attempt seed could plausibly
    /// succeed (environment failures and caught panics).
    pub fn is_transient(&self) -> bool {
        self.cause() == FailureCause::Transient
    }
}

/// The coarse failure taxonomy used for retry decisions and degradation
/// accounting. Every [`TrialFailure`] maps onto exactly one cause via
/// [`TrialFailure::cause`]; journaled failure strings map back via
/// [`FailureCause::from_status`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FailureCause {
    /// Per-trial deadline exceeded.
    Timeout,
    /// A cancellation token fired.
    Cancelled,
    /// Recoverable by retrying (environment failure, caught panic).
    Transient,
    /// Deterministically wrong (invalid architecture, divergence) —
    /// retrying cannot help.
    Invalid,
}

impl FailureCause {
    /// Classifies a journaled failure status string (the
    /// `TrialFailure::to_string()` the journal stores verbatim).
    /// Returns `None` for strings no known variant produces.
    pub fn from_status(status: &str) -> Option<FailureCause> {
        if status.starts_with("invalid architecture") || status == "training diverged" {
            Some(FailureCause::Invalid)
        } else if status == "environment failure" || status.starts_with("panicked") {
            Some(FailureCause::Transient)
        } else if status.starts_with("trial timeout") {
            Some(FailureCause::Timeout)
        } else if status == "cancelled" {
            Some(FailureCause::Cancelled)
        } else {
            None
        }
    }
}

/// Accuracy outcome of one evaluated trial.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EvalOutcome {
    /// Mean accuracy over k folds, percent.
    pub mean_accuracy: f64,
    /// Per-fold validation accuracies.
    pub fold_accuracies: Vec<f64>,
    /// (Simulated or measured) training wall-clock, seconds.
    pub train_seconds: f64,
}

/// A trial evaluator: produces the accuracy objective for one spec.
pub trait Evaluator: Sync {
    fn evaluate(&self, spec: &TrialSpec, seed: u64) -> Result<EvalOutcome, TrialFailure>;

    /// Number of cross-validation folds this evaluator runs.
    fn folds(&self) -> usize;
}

/// Stable 64-bit hash of a trial key (FNV-1a).
pub fn key_hash(key: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in key.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The surrogate evaluator used for full-scale sweeps.
#[derive(Clone, Debug)]
pub struct SurrogateEvaluator {
    pub folds: usize,
    /// Tile edge used for architecture validity checking.
    pub input_hw: usize,
}

impl Default for SurrogateEvaluator {
    fn default() -> SurrogateEvaluator {
        SurrogateEvaluator {
            folds: 5,
            input_hw: 32,
        }
    }
}

impl Evaluator for SurrogateEvaluator {
    fn evaluate(&self, spec: &TrialSpec, seed: u64) -> Result<EvalOutcome, TrialFailure> {
        let mut span = hydronas_telemetry::span("nas.evaluate", "surrogate");
        span.attr("id", spec.id);
        // Validity: the architecture must shape-infer at the tile size.
        ModelGraph::from_arch(&spec.arch, self.input_hw)
            .map_err(|e| TrialFailure::InvalidArchitecture(e.to_string()))?;
        let trial_seed = seed ^ key_hash(&spec.key());
        let fold_accuracies =
            surrogate_fold_accuracies(&spec.arch, spec.combo.batch_size, self.folds, trial_seed);
        let mean_accuracy = fold_accuracies.iter().sum::<f64>() / self.folds as f64;
        Ok(EvalOutcome {
            mean_accuracy,
            fold_accuracies,
            train_seconds: trial_duration_s(spec),
        })
    }

    fn folds(&self) -> usize {
        self.folds
    }
}

/// The real-training evaluator: synthesizes a (scaled) drainage dataset
/// and runs actual k-fold cross-validated SGD training.
pub struct RealTrainer {
    pub regions: Vec<Region>,
    /// Fraction of Table 1 sample counts to synthesize.
    pub dataset_scale: f64,
    pub tile_size: usize,
    pub folds: usize,
    pub epochs: usize,
    pub learning_rate: f32,
    /// Feature-width cap: training f=64 on CPU is possible but slow, so
    /// small-scale demonstrations can clamp width (documented distortion;
    /// `None` trains the exact candidate).
    pub max_features: Option<usize>,
    /// Cooperative cancellation: checked before evaluation starts and at
    /// every fold/epoch boundary inside the training loop. Share a clone
    /// of the sweep's token here so Ctrl-C stops real training between
    /// epochs instead of waiting for the trial to finish.
    pub cancel: CancelToken,
}

impl RealTrainer {
    /// Miniature configuration for tests and examples.
    pub fn miniature() -> RealTrainer {
        RealTrainer {
            regions: hydronas_geodata::study_regions(),
            dataset_scale: 0.016,
            tile_size: 24,
            folds: 2,
            epochs: 6,
            learning_rate: 0.05,
            max_features: Some(8),
            cancel: CancelToken::new(),
        }
    }
}

impl Evaluator for RealTrainer {
    fn evaluate(&self, spec: &TrialSpec, seed: u64) -> Result<EvalOutcome, TrialFailure> {
        let mut span = hydronas_telemetry::span("nas.evaluate", "real");
        span.attr("id", spec.id);
        if self.cancel.is_cancelled() {
            return Err(TrialFailure::Cancelled);
        }
        let mut arch = spec.arch;
        if let Some(cap) = self.max_features {
            arch.initial_features = arch.initial_features.min(cap);
        }
        ModelGraph::from_arch(&arch, self.tile_size)
            .map_err(|e| TrialFailure::InvalidArchitecture(e.to_string()))?;

        let mode = ChannelMode::from_channels(spec.combo.channels);
        let tiles = build_dataset(
            &self.regions,
            mode,
            self.tile_size,
            self.dataset_scale,
            seed,
        );
        let data = Dataset::new(tiles.features, tiles.labels);

        let config = TrainConfig {
            epochs: self.epochs,
            batch_size: spec.combo.batch_size,
            learning_rate: self.learning_rate,
            momentum: 0.9,
            weight_decay: 1e-4,
            seed: seed ^ key_hash(&spec.key()),
            ..Default::default()
        };
        let started = std::time::Instant::now();
        let (mean_accuracy, folds) =
            kfold_cross_validate_with_cancel(&arch, &data, self.folds, &config, &self.cancel);
        if folds.len() < self.folds || folds.iter().any(|f| f.result.cancelled) {
            return Err(TrialFailure::Cancelled);
        }
        if folds.iter().any(|f| f.result.diverged) {
            return Err(TrialFailure::Diverged);
        }
        Ok(EvalOutcome {
            mean_accuracy,
            fold_accuracies: folds.iter().map(|f| f.result.report.accuracy_pct).collect(),
            train_seconds: started.elapsed().as_secs_f64(),
        })
    }

    fn folds(&self) -> usize {
        self.folds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{InputCombo, SearchSpace, TrialSpec};
    use hydronas_graph::ArchConfig;

    fn spec(arch: ArchConfig, batch: usize) -> TrialSpec {
        TrialSpec {
            id: 0,
            combo: InputCombo {
                channels: arch.in_channels,
                batch_size: batch,
            },
            arch,
            kernel_size_pool: arch.pool.map_or(3, |p| p.kernel),
            stride_pool: arch.pool.map_or(2, |p| p.stride),
        }
    }

    #[test]
    fn surrogate_is_deterministic() {
        let ev = SurrogateEvaluator::default();
        let s = spec(ArchConfig::baseline(5), 8);
        let a = ev.evaluate(&s, 7).unwrap();
        let b = ev.evaluate(&s, 7).unwrap();
        assert_eq!(a, b);
        let c = ev.evaluate(&s, 8).unwrap();
        assert_ne!(a.mean_accuracy, c.mean_accuracy);
    }

    #[test]
    fn surrogate_rejects_collapsing_arch() {
        let ev = SurrogateEvaluator {
            folds: 5,
            input_hw: 4,
        };
        let arch = ArchConfig {
            in_channels: 5,
            kernel_size: 7,
            stride: 2,
            padding: 0,
            pool: None,
            initial_features: 32,
            num_classes: 2,
        };
        let err = ev.evaluate(&spec(arch, 8), 0).unwrap_err();
        assert!(matches!(err, TrialFailure::InvalidArchitecture(_)));
    }

    #[test]
    fn surrogate_mean_matches_folds() {
        let ev = SurrogateEvaluator::default();
        let out = ev.evaluate(&spec(ArchConfig::baseline(7), 16), 3).unwrap();
        assert_eq!(out.fold_accuracies.len(), 5);
        let mean = out.fold_accuracies.iter().sum::<f64>() / 5.0;
        assert!((mean - out.mean_accuracy).abs() < 1e-12);
        assert!(out.train_seconds > 0.0);
    }

    #[test]
    fn surrogate_covers_whole_grid_without_panic() {
        let ev = SurrogateEvaluator::default();
        for s in crate::space::full_grid(&SearchSpace::paper())
            .iter()
            .step_by(37)
        {
            let out = ev.evaluate(s, 1).unwrap();
            assert!((50.0..=99.5).contains(&out.mean_accuracy));
        }
    }

    #[test]
    fn real_trainer_learns_above_chance() {
        // Miniature but real: synthesize tiles, train 2 epochs, 2 folds.
        let trainer = RealTrainer::miniature();
        let arch = ArchConfig {
            in_channels: 5,
            kernel_size: 3,
            stride: 2,
            padding: 1,
            pool: None,
            initial_features: 8,
            num_classes: 2,
        };
        let out = trainer.evaluate(&spec(arch, 8), 11).unwrap();
        assert_eq!(out.fold_accuracies.len(), 2);
        // Real learning on tiny data: demand meaningfully above chance.
        assert!(out.mean_accuracy > 55.0, "accuracy {}", out.mean_accuracy);
        assert!(out.train_seconds > 0.0);
    }

    #[test]
    fn key_hash_is_stable_and_distinct() {
        assert_eq!(key_hash("abc"), key_hash("abc"));
        assert_ne!(key_hash("abc"), key_hash("abd"));
    }

    #[test]
    fn failure_display_strings_are_part_of_the_journal_format() {
        // These exact strings live in every journal written since PR 1;
        // changing any of them breaks resume byte-identity.
        assert_eq!(
            TrialFailure::EnvironmentFailure.to_string(),
            "environment failure"
        );
        assert_eq!(TrialFailure::Diverged.to_string(), "training diverged");
        assert_eq!(
            TrialFailure::InvalidArchitecture("why".into()).to_string(),
            "invalid architecture: why"
        );
        assert_eq!(TrialFailure::Cancelled.to_string(), "cancelled");
        assert!(TrialFailure::Timeout { limit_s: 1.5 }
            .to_string()
            .starts_with("trial timeout"));
        assert!(TrialFailure::Panicked("boom".into())
            .to_string()
            .starts_with("panicked: boom"));
    }

    #[test]
    fn every_failure_status_round_trips_through_the_cause_taxonomy() {
        for failure in [
            TrialFailure::InvalidArchitecture("x".into()),
            TrialFailure::EnvironmentFailure,
            TrialFailure::Diverged,
            TrialFailure::Timeout { limit_s: 2.0 },
            TrialFailure::Cancelled,
            TrialFailure::Panicked("p".into()),
        ] {
            assert_eq!(
                FailureCause::from_status(&failure.to_string()),
                Some(failure.cause()),
                "{failure}"
            );
        }
        assert_eq!(FailureCause::from_status("not a failure string"), None);
    }

    #[test]
    fn only_environment_and_panic_failures_are_transient() {
        assert!(TrialFailure::EnvironmentFailure.is_transient());
        assert!(TrialFailure::Panicked("p".into()).is_transient());
        assert!(!TrialFailure::Diverged.is_transient());
        assert!(!TrialFailure::Cancelled.is_transient());
        assert!(!TrialFailure::Timeout { limit_s: 1.0 }.is_transient());
    }

    #[test]
    fn cancelled_real_trainer_reports_cancelled_not_a_result() {
        let trainer = RealTrainer::miniature();
        trainer.cancel.cancel();
        let arch = ArchConfig {
            in_channels: 5,
            kernel_size: 3,
            stride: 2,
            padding: 1,
            pool: None,
            initial_features: 8,
            num_classes: 2,
        };
        let err = trainer.evaluate(&spec(arch, 8), 11).unwrap_err();
        assert!(matches!(err, TrialFailure::Cancelled), "{err}");
    }
}
