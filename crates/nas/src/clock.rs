//! Simulated wall-clock accounting (paper Section 5, observation 1).
//!
//! The paper reports the 5-channel / batch-8 NNI experiment taking
//! 9 h 20 m and the 7-channel / batch-8 one 29 h 3 m — a 3.1x blow-up for
//! 1.4x the input channels, dominated by data loading and per-step
//! overheads on the A100 host. We model per-trial duration as
//!
//! `t = folds * epochs * steps_per_epoch * step_cost(channels, arch)`
//!
//! with a channel-dependent step cost calibrated to those two anchors, so
//! the scheduler can reproduce the Section 5 numbers and expose the same
//! "search-space pruning saves wall-clock" conclusions.

use crate::space::TrialSpec;
use hydronas_graph::{model_cost, ModelGraph};

/// Paper protocol constants.
pub const DATASET_SIZE: usize = 12_068;
pub const EPOCHS: usize = 5;
pub const FOLDS: usize = 5;

/// Per-step fixed host overhead in seconds (optimizer, Python dispatch).
const STEP_OVERHEAD_S: f64 = 0.0020;
/// Per-sample data-pipeline cost in seconds for 5-channel inputs.
const SAMPLE_COST_5CH_S: f64 = 0.000_20;
/// 7-channel inputs pay the NDVI/NDWI recompute + larger host->device
/// copies; calibrated against the 9h20m -> 29h03m anchor pair.
const SAMPLE_COST_7CH_S: f64 = 0.001_20;
/// GPU compute seconds per GFLOP of (forward + backward ~ 3x forward).
const COMPUTE_S_PER_GFLOP: f64 = 0.000_10;

/// Simulated duration of one trial (all folds, all epochs), seconds.
pub fn trial_duration_s(spec: &TrialSpec) -> f64 {
    let train_samples = DATASET_SIZE * (FOLDS - 1) / FOLDS;
    let steps_per_epoch = train_samples.div_ceil(spec.combo.batch_size);
    let per_sample = match spec.combo.channels {
        5 => SAMPLE_COST_5CH_S,
        7 => SAMPLE_COST_7CH_S,
        _ => panic!("unsupported channel count"),
    };
    // Forward+backward compute per sample from the static graph analysis.
    let gflops = ModelGraph::from_arch(&spec.arch, 32)
        .map(|g| model_cost(&g).flops as f64 / 1e9)
        .unwrap_or(0.0);
    let compute_per_sample = 3.0 * gflops * COMPUTE_S_PER_GFLOP;
    let per_epoch = steps_per_epoch as f64 * STEP_OVERHEAD_S
        + train_samples as f64 * (per_sample + compute_per_sample);
    (FOLDS * EPOCHS) as f64 * per_epoch
}

/// Total simulated wall-clock of a set of trials run sequentially on one
/// GPU (NNI's default), in seconds.
pub fn experiment_wall_clock(trials: &[TrialSpec]) -> f64 {
    trials.iter().map(trial_duration_s).sum()
}

/// Formats seconds as `Hh Mm`.
pub fn format_hm(seconds: f64) -> String {
    let total_minutes = (seconds / 60.0).round() as i64;
    format!("{}h {:02}m", total_minutes / 60, total_minutes % 60)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{full_grid, InputCombo, SearchSpace};

    fn combo_trials(channels: usize, batch: usize) -> Vec<TrialSpec> {
        full_grid(&SearchSpace::paper())
            .into_iter()
            .filter(|t| {
                t.combo
                    == InputCombo {
                        channels,
                        batch_size: batch,
                    }
            })
            .collect()
    }

    #[test]
    fn section5_anchor_5ch_batch8() {
        // Paper: 9 h 20 m = 33,600 s for the 288-trial 5ch/b8 experiment.
        let total = experiment_wall_clock(&combo_trials(5, 8));
        let hours = total / 3600.0;
        assert!((7.5..12.0).contains(&hours), "got {hours:.2} h");
    }

    #[test]
    fn section5_anchor_7ch_batch8() {
        // Paper: 29 h 3 m = 104,580 s.
        let total = experiment_wall_clock(&combo_trials(7, 8));
        let hours = total / 3600.0;
        assert!((23.0..35.0).contains(&hours), "got {hours:.2} h");
    }

    #[test]
    fn channel_blowup_ratio_is_about_3x() {
        let t5 = experiment_wall_clock(&combo_trials(5, 8));
        let t7 = experiment_wall_clock(&combo_trials(7, 8));
        let ratio = t7 / t5;
        // Paper ratio: 29h03m / 9h20m = 3.11.
        assert!((2.6..3.6).contains(&ratio), "ratio {ratio:.2}");
    }

    #[test]
    fn larger_batches_run_faster() {
        let t8 = experiment_wall_clock(&combo_trials(5, 8));
        let t16 = experiment_wall_clock(&combo_trials(5, 16));
        let t32 = experiment_wall_clock(&combo_trials(5, 32));
        assert!(t8 > t16 && t16 > t32);
    }

    #[test]
    fn wider_models_train_slower() {
        let mut narrow = combo_trials(5, 8)[0].clone();
        narrow.arch.initial_features = 32;
        let mut wide = narrow.clone();
        wide.arch.initial_features = 64;
        assert!(trial_duration_s(&wide) > trial_duration_s(&narrow));
    }

    #[test]
    fn format_hm_rounds_to_minutes() {
        assert_eq!(format_hm(33_600.0), "9h 20m");
        assert_eq!(format_hm(104_580.0), "29h 03m");
        assert_eq!(format_hm(59.0), "0h 01m");
    }
}

/// Per-phase breakdown of one trial's simulated runtime — the paper's
/// suggested Nsight-style profiling, applied to the cost model. Phases
/// sum exactly to [`trial_duration_s`].
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TrialProfile {
    /// Host-side per-step dispatch (optimizer, Python glue).
    pub dispatch_s: f64,
    /// Data pipeline (decode, NDVI/NDWI recompute, host->device copies).
    pub data_s: f64,
    /// GPU compute (forward + backward).
    pub compute_s: f64,
}

impl TrialProfile {
    pub fn total_s(&self) -> f64 {
        self.dispatch_s + self.data_s + self.compute_s
    }

    /// The dominant phase's name.
    pub fn bottleneck(&self) -> &'static str {
        if self.data_s >= self.dispatch_s && self.data_s >= self.compute_s {
            "data"
        } else if self.compute_s >= self.dispatch_s {
            "compute"
        } else {
            "dispatch"
        }
    }
}

/// Profiles one trial through the same cost model as [`trial_duration_s`].
pub fn profile_trial(spec: &TrialSpec) -> TrialProfile {
    let train_samples = DATASET_SIZE * (FOLDS - 1) / FOLDS;
    let steps_per_epoch = train_samples.div_ceil(spec.combo.batch_size);
    let per_sample = match spec.combo.channels {
        5 => SAMPLE_COST_5CH_S,
        7 => SAMPLE_COST_7CH_S,
        _ => panic!("unsupported channel count"),
    };
    let gflops = ModelGraph::from_arch(&spec.arch, 32)
        .map(|g| model_cost(&g).flops as f64 / 1e9)
        .unwrap_or(0.0);
    let runs = (FOLDS * EPOCHS) as f64;
    TrialProfile {
        dispatch_s: runs * steps_per_epoch as f64 * STEP_OVERHEAD_S,
        data_s: runs * train_samples as f64 * per_sample,
        compute_s: runs * train_samples as f64 * 3.0 * gflops * COMPUTE_S_PER_GFLOP,
    }
}

/// Simulated makespan of running `trials` on `workers` identical GPUs
/// with LPT (longest-processing-time-first) scheduling — the paper's
/// "parallel execution on multi-GPU platforms" future-work item,
/// quantified. Returns `(makespan_s, per_worker_busy_s)`.
pub fn makespan_lpt(trials: &[TrialSpec], workers: usize) -> (f64, Vec<f64>) {
    assert!(workers >= 1, "need at least one worker");
    let mut durations: Vec<f64> = trials.iter().map(trial_duration_s).collect();
    durations.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    let mut loads = vec![0.0f64; workers];
    for d in durations {
        // Assign to the least-loaded worker.
        let (idx, _) = loads
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
            .expect("workers >= 1");
        loads[idx] += d;
    }
    let makespan = loads.iter().cloned().fold(0.0, f64::max);
    (makespan, loads)
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use crate::space::{full_grid, SearchSpace};

    #[test]
    fn profile_phases_sum_to_duration() {
        for spec in full_grid(&SearchSpace::paper()).iter().step_by(173) {
            let p = profile_trial(spec);
            let total = trial_duration_s(spec);
            assert!((p.total_s() - total).abs() < 1e-9, "{:?}", spec.combo);
            assert!(p.dispatch_s > 0.0 && p.data_s > 0.0 && p.compute_s > 0.0);
        }
    }

    #[test]
    fn seven_channel_trials_are_data_bound() {
        // The Section 5 anomaly (3.1x wall-clock for 1.4x channels) shows
        // the 7-channel pipeline is data-bound; the profiler exposes it.
        let trials = full_grid(&SearchSpace::paper());
        let t7 = trials.iter().find(|t| t.combo.channels == 7).unwrap();
        assert_eq!(profile_trial(t7).bottleneck(), "data");
    }

    #[test]
    fn makespan_shrinks_with_workers() {
        let trials: Vec<_> = full_grid(&SearchSpace::paper())
            .into_iter()
            .take(64)
            .collect();
        let (m1, _) = makespan_lpt(&trials, 1);
        let (m2, _) = makespan_lpt(&trials, 2);
        let (m4, loads4) = makespan_lpt(&trials, 4);
        assert!(m2 < m1 && m4 < m2);
        // LPT on many small jobs is near-perfectly balanced.
        let speedup = m1 / m4;
        assert!(speedup > 3.5, "4-worker speedup only {speedup:.2}");
        assert_eq!(loads4.len(), 4);
        // Total work is conserved.
        let total: f64 = loads4.iter().sum();
        assert!((total - m1).abs() / m1 < 1e-9);
    }

    #[test]
    fn single_worker_makespan_equals_wall_clock() {
        let trials: Vec<_> = full_grid(&SearchSpace::paper())
            .into_iter()
            .take(20)
            .collect();
        let (m, loads) = makespan_lpt(&trials, 1);
        assert!((m - experiment_wall_clock(&trials)).abs() < 1e-9);
        assert_eq!(loads.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let trials: Vec<_> = full_grid(&SearchSpace::paper())
            .into_iter()
            .take(2)
            .collect();
        let _ = makespan_lpt(&trials, 0);
    }
}
