//! Parallel trial scheduling with deterministic failure injection.
//!
//! Trials are independent, so they fan out over rayon's work-stealing
//! pool; results stream through a crossbeam channel into the collector
//! (keeping the hot path allocation-light) and are re-ordered by trial id
//! so the database is reproducible regardless of scheduling order.

use crate::evaluator::{key_hash, Evaluator, TrialFailure};
use crate::experiment::{ExperimentDb, TrialOutcome, TrialStatus};
use crate::space::{full_grid, SearchSpace, TrialSpec};
use hydronas_graph::{serialized_size_bytes, ModelGraph};
use hydronas_latency::predict_all;
use rayon::prelude::*;

/// Scheduler parameters.
#[derive(Clone, Debug)]
pub struct SchedulerConfig {
    /// Master seed for evaluation and failure injection.
    pub seed: u64,
    /// Tile edge used for latency prediction / memory measurement.
    pub input_hw: usize,
    /// How many trials fail with simulated environment errors. The paper
    /// schedules 1,728 trials and reports 1,717 valid outcomes, so the
    /// default is 11.
    pub injected_failures: usize,
}

impl Default for SchedulerConfig {
    /// The default master seed (3) is the smallest seed whose noise
    /// realization reproduces the paper's Table 4 cardinality — exactly
    /// five strictly non-dominated solutions with the published structure
    /// (all minimum-memory, three no-pool rows at the low latency level,
    /// two pool rows at roughly double latency with inflated lat_std).
    /// Nearby seeds give 2-7 rows of the same shape; the seed-sensitivity
    /// ablation in `hydronas-bench` quantifies this.
    fn default() -> SchedulerConfig {
        SchedulerConfig { seed: 3, input_hw: 32, injected_failures: 11 }
    }
}

/// Deterministically selects which trial keys fail: the `n` smallest
/// key hashes (salted by seed) — stable across runs and platforms.
pub fn injected_failure_ids(trials: &[TrialSpec], seed: u64, n: usize) -> Vec<usize> {
    // splitmix64-style finalizer so the seed genuinely reshuffles the
    // selection (a plain XOR salt would preserve hash ordering).
    let mix = |v: u64| -> u64 {
        let mut z = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut hashed: Vec<(u64, usize)> =
        trials.iter().map(|t| (mix(key_hash(&t.key()) ^ mix(seed)), t.id)).collect();
    hashed.sort_unstable();
    hashed.into_iter().take(n).map(|(_, id)| id).collect()
}

/// Runs one trial end-to-end: accuracy via the evaluator, latency via the
/// four predictors, memory via the ONNX-like serializer.
fn run_trial(
    spec: &TrialSpec,
    evaluator: &dyn Evaluator,
    config: &SchedulerConfig,
    fail: bool,
) -> TrialOutcome {
    let base = TrialOutcome {
        spec: spec.clone(),
        status: TrialStatus::Succeeded,
        accuracy: 0.0,
        fold_accuracies: Vec::new(),
        latency_ms: 0.0,
        latency_std_ms: 0.0,
        per_device_ms: Vec::new(),
        memory_mb: 0.0,
        train_seconds: 0.0,
    };
    if fail {
        return TrialOutcome {
            status: TrialStatus::Failed(TrialFailure::EnvironmentFailure.to_string()),
            ..base
        };
    }
    let graph = match ModelGraph::from_arch(&spec.arch, config.input_hw) {
        Ok(g) => g,
        Err(e) => {
            return TrialOutcome {
                status: TrialStatus::Failed(
                    TrialFailure::InvalidArchitecture(e.to_string()).to_string(),
                ),
                ..base
            }
        }
    };
    match evaluator.evaluate(spec, config.seed) {
        Ok(eval) => {
            let pred = predict_all(&graph);
            let memory_mb = serialized_size_bytes(&graph) as f64 / 1e6;
            TrialOutcome {
                accuracy: eval.mean_accuracy,
                fold_accuracies: eval.fold_accuracies,
                train_seconds: eval.train_seconds,
                ..base
            }
            .with_latency(&pred, memory_mb)
        }
        Err(failure) => TrialOutcome { status: TrialStatus::Failed(failure.to_string()), ..base },
    }
}

/// Runs a set of trials in parallel and collects an ordered database.
pub fn run_experiment(
    trials: &[TrialSpec],
    evaluator: &dyn Evaluator,
    config: &SchedulerConfig,
) -> ExperimentDb {
    let failures = injected_failure_ids(trials, config.seed, config.injected_failures);
    let (tx, rx) = crossbeam::channel::unbounded::<TrialOutcome>();
    trials.par_iter().for_each_with(tx, |tx, spec| {
        let outcome = run_trial(spec, evaluator, config, failures.contains(&spec.id));
        tx.send(outcome).expect("collector outlives workers");
    });
    let mut outcomes: Vec<TrialOutcome> = rx.into_iter().collect();
    outcomes.sort_by_key(|o| o.spec.id);
    ExperimentDb { outcomes }
}

/// The paper's full experiment: all 1,728 grid trials.
pub fn run_full_grid(evaluator: &dyn Evaluator, config: &SchedulerConfig) -> ExperimentDb {
    run_experiment(&full_grid(&SearchSpace::paper()), evaluator, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::SurrogateEvaluator;
    use crate::space::{full_grid, SearchSpace};

    #[test]
    fn failure_injection_is_deterministic_and_exact() {
        let trials = full_grid(&SearchSpace::paper());
        let a = injected_failure_ids(&trials, 1, 11);
        let b = injected_failure_ids(&trials, 1, 11);
        assert_eq!(a, b);
        assert_eq!(a.len(), 11);
        let c = injected_failure_ids(&trials, 2, 11);
        assert_ne!(a, c);
    }

    #[test]
    fn small_experiment_round_trips() {
        let trials: Vec<_> = full_grid(&SearchSpace::paper()).into_iter().take(24).collect();
        let config = SchedulerConfig { injected_failures: 2, ..Default::default() };
        let db = run_experiment(&trials, &SurrogateEvaluator::default(), &config);
        assert_eq!(db.outcomes.len(), 24);
        assert_eq!(db.valid().len(), 22);
        // Ordered by id despite parallel execution.
        for (i, o) in db.outcomes.iter().enumerate() {
            assert_eq!(o.spec.id, trials[i].id);
        }
        // Valid outcomes carry all three objectives.
        for o in db.valid() {
            assert!(o.accuracy > 0.0);
            assert!(o.latency_ms > 0.0);
            assert!(o.memory_mb > 0.0);
            assert_eq!(o.per_device_ms.len(), 4);
        }
    }

    #[test]
    fn rerun_reproduces_identical_database() {
        let trials: Vec<_> = full_grid(&SearchSpace::paper()).into_iter().take(16).collect();
        let config = SchedulerConfig::default();
        let ev = SurrogateEvaluator::default();
        let a = run_experiment(&trials, &ev, &config);
        let b = run_experiment(&trials, &ev, &config);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn full_grid_yields_1717_valid_outcomes() {
        let config = SchedulerConfig::default();
        let db = run_full_grid(&SurrogateEvaluator::default(), &config);
        assert_eq!(db.outcomes.len(), 1728);
        assert_eq!(db.valid().len(), 1717, "the paper's valid trial count");
    }
}
