//! Checkpointed, observable trial scheduling with deterministic failure
//! injection and bounded retries.
//!
//! Trials are independent, so they fan out over a scoped worker pool
//! (one OS thread per core, pulling indices off a shared atomic cursor);
//! results stream through a crossbeam channel into the collector, which
//! journals each terminal outcome ([`crate::journal`]), feeds the
//! progress sink ([`crate::progress`]), and finally re-orders by trial
//! id so the database is reproducible regardless of scheduling order.
//!
//! Determinism contract: every trial's outcome is a pure function of
//! `(spec, config)` — attempt `k` evaluates with [`attempt_seed`]`(seed,
//! k)` and the injected failure sets are seed-derived — so a sweep
//! resumed from a journal is byte-identical to an uninterrupted one.

use crate::chaos::{ChaosConfig, ChaosFault};
use crate::clock::trial_duration_s;
use crate::error::SweepError;
use crate::evaluator::{key_hash, Evaluator, FailureCause, TrialFailure};
use crate::experiment::{ExperimentDb, TrialOutcome, TrialStatus};
use crate::journal::{Journal, TrialRecord};
use crate::metrics_cache::GraphMetricsCache;
use crate::progress::{ProgressSink, SweepEvent, SweepStats};
use crate::space::{full_grid, SearchSpace, TrialSpec};
use crate::sweep::{DegradationReport, RetryPolicy};
use hydronas_nn::CancelToken;
use std::collections::{HashMap, HashSet};
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Scheduler parameters.
#[derive(Clone, Debug)]
pub struct SchedulerConfig {
    /// Master seed for evaluation and failure injection.
    pub seed: u64,
    /// Tile edge used for latency prediction / memory measurement.
    pub input_hw: usize,
    /// How many trials fail with simulated environment errors. The paper
    /// schedules 1,728 trials and reports 1,717 valid outcomes, so the
    /// default is 11. These failures are *permanent*: they exhaust every
    /// retry attempt (the paper's lost trials stayed lost).
    pub injected_failures: usize,
    /// Retry budget per trial for environment failures (total attempts,
    /// so `1` disables retries). Attempt `k` evaluates with
    /// [`attempt_seed`]`(seed, k)`, keeping retried runs deterministic.
    pub max_attempts: usize,
    /// How many trials fail their *first* attempt with a transient
    /// environment error but succeed when retried — the recoverable
    /// counterpart of `injected_failures`, for exercising the retry
    /// path. Chosen deterministically, disjoint from the permanent set.
    pub transient_failures: usize,
}

impl Default for SchedulerConfig {
    /// The default master seed (3) is the smallest seed whose noise
    /// realization reproduces the paper's Table 4 cardinality — exactly
    /// five strictly non-dominated solutions with the published structure
    /// (all minimum-memory, three no-pool rows at the low latency level,
    /// two pool rows at roughly double latency with inflated lat_std).
    /// Nearby seeds give 2-7 rows of the same shape; the seed-sensitivity
    /// ablation in `hydronas-bench` quantifies this.
    fn default() -> SchedulerConfig {
        SchedulerConfig {
            seed: 3,
            input_hw: 32,
            injected_failures: 11,
            max_attempts: 3,
            transient_failures: 0,
        }
    }
}

/// splitmix64-style finalizer so a seed genuinely reshuffles hash-derived
/// selections (a plain XOR salt would preserve hash ordering).
fn mix64(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministically selects which trial keys fail permanently: the `n`
/// smallest key hashes (salted by seed) — stable across runs and
/// platforms.
pub fn injected_failure_ids(trials: &[TrialSpec], seed: u64, n: usize) -> Vec<usize> {
    let mut hashed: Vec<(u64, usize)> = trials
        .iter()
        .map(|t| (mix64(key_hash(&t.key()) ^ mix64(seed)), t.id))
        .collect();
    hashed.sort_unstable();
    hashed.into_iter().take(n).map(|(_, id)| id).collect()
}

/// Salt separating the transient-failure stream from the permanent one.
const TRANSIENT_SALT: u64 = 0xA076_1D64_78BD_642F;

/// Deterministically selects which trials fail their first attempt with
/// a *recoverable* environment error. Disjoint from `permanent` so the
/// two failure populations never overlap.
pub fn transient_failure_ids(
    trials: &[TrialSpec],
    seed: u64,
    n: usize,
    permanent: &HashSet<usize>,
) -> Vec<usize> {
    injected_failure_ids(trials, seed ^ TRANSIENT_SALT, trials.len())
        .into_iter()
        .filter(|id| !permanent.contains(id))
        .take(n)
        .collect()
}

/// The evaluation seed for attempt `attempt` (1-based) of a trial. The
/// first attempt uses the master seed unchanged — so runs that never
/// retry are unaffected — and later attempts derive fresh deterministic
/// streams, so resumed and uninterrupted sweeps agree byte for byte.
pub fn attempt_seed(seed: u64, attempt: usize) -> u64 {
    if attempt <= 1 {
        seed
    } else {
        mix64(seed ^ (attempt as u64).wrapping_mul(TRANSIENT_SALT))
    }
}

/// A blank outcome scaffold for `spec` (success status, zeroed
/// objectives) that failure paths overwrite.
fn base_outcome(spec: &TrialSpec) -> TrialOutcome {
    TrialOutcome {
        spec: spec.clone(),
        status: TrialStatus::Succeeded,
        accuracy: 0.0,
        fold_accuracies: Vec::new(),
        latency_ms: 0.0,
        latency_std_ms: 0.0,
        per_device_ms: Vec::new(),
        memory_mb: 0.0,
        train_seconds: 0.0,
    }
}

/// A terminal failed outcome for `spec`.
fn failed_outcome(spec: &TrialSpec, failure: TrialFailure) -> TrialOutcome {
    TrialOutcome {
        status: TrialStatus::Failed(failure.to_string()),
        ..base_outcome(spec)
    }
}

/// Runs one attempt of a trial end-to-end: accuracy via the evaluator,
/// latency and memory via the shared graph-metrics cache (one graph
/// build per distinct architecture, not per trial).
fn run_trial(
    spec: &TrialSpec,
    evaluator: &dyn Evaluator,
    metrics: &GraphMetricsCache,
    fail: bool,
    seed: u64,
) -> TrialOutcome {
    let base = base_outcome(spec);
    if fail {
        return TrialOutcome {
            status: TrialStatus::Failed(TrialFailure::EnvironmentFailure.to_string()),
            ..base
        };
    }
    // The cache's error Display delegates to the inner `from_arch`
    // error, so failure statuses match the previous
    // build-a-graph-per-trial code byte for byte.
    let arch_metrics = match metrics.get(&spec.arch) {
        Ok(m) => m,
        Err(e) => {
            return TrialOutcome {
                status: TrialStatus::Failed(
                    TrialFailure::InvalidArchitecture(e.graph.to_string()).to_string(),
                ),
                ..base
            }
        }
    };
    match evaluator.evaluate(spec, seed) {
        Ok(eval) => TrialOutcome {
            accuracy: eval.mean_accuracy,
            fold_accuracies: eval.fold_accuracies,
            train_seconds: eval.train_seconds,
            ..base
        }
        .with_latency(&arch_metrics.latency, arch_metrics.memory_mb),
        Err(failure) => TrialOutcome {
            status: TrialStatus::Failed(failure.to_string()),
            ..base
        },
    }
}

/// Is this terminal status retryable? Transient causes only: environment
/// failures and caught panics. (Environment failures were the only
/// retryable class before the cause taxonomy existed, and panics cannot
/// occur without chaos injection or an actually panicking evaluator, so
/// default sweeps behave exactly as they always did.)
fn is_retryable(status: &TrialStatus) -> bool {
    matches!(status, TrialStatus::Failed(msg)
        if FailureCause::from_status(msg) == Some(FailureCause::Transient))
}

thread_local! {
    /// True while this worker is inside an attempt whose panic (if any)
    /// will be caught and converted to a [`TrialFailure::Panicked`]
    /// outcome — the process-global hook stays quiet for it.
    static PANIC_IS_CONTAINED: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// [`catch_unwind`] without the default hook's stderr backtrace: a caught
/// attempt panic is an *outcome* (journaled as `panicked: …`), not a
/// crash, so it must not spray diagnostics over the progress output. The
/// silencing hook is installed once, process-wide, and defers to the
/// previously installed hook for every panic outside an attempt.
fn silenced_catch_unwind<R>(body: AssertUnwindSafe<impl FnOnce() -> R>) -> std::thread::Result<R> {
    static INSTALL: std::sync::Once = std::sync::Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !PANIC_IS_CONTAINED.with(|flag| flag.get()) {
                previous(info);
            }
        }));
    });
    PANIC_IS_CONTAINED.with(|flag| flag.set(true));
    let result = catch_unwind(body);
    PANIC_IS_CONTAINED.with(|flag| flag.set(false));
    result
}

/// Extracts the human-readable message from a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs a trial under the retry policy: transient failures (environment
/// errors, caught panics) are re-attempted up to
/// `params.retry.max_attempts` times, each attempt with its own
/// deterministic seed. Panics — real or chaos-injected — are caught at
/// the attempt boundary and converted to `TrialFailure::Panicked`, so a
/// misbehaving evaluator degrades one trial instead of the whole sweep.
/// Returns the terminal outcome, attempts spent, and simulated backoff
/// seconds accrued.
fn run_trial_with_retry(
    spec: &TrialSpec,
    evaluator: &dyn Evaluator,
    params: &SweepParams,
    metrics: &GraphMetricsCache,
    permanent_fail: bool,
    transient_fail: bool,
) -> (TrialOutcome, usize, f64) {
    // Per-trial deadline on the simulated clock: a pure function of the
    // spec, checked before any work happens. Terminal — the simulated
    // duration cannot shrink on retry.
    if let Some(limit_s) = params.trial_timeout_s {
        if trial_duration_s(spec) > limit_s {
            hydronas_telemetry::add("nas.trial.timeout", 1);
            return (
                failed_outcome(spec, TrialFailure::Timeout { limit_s }),
                1,
                0.0,
            );
        }
    }
    let max_attempts = params.retry.max_attempts.max(1);
    let mut attempt = 1;
    let mut backoff_s = 0.0;
    loop {
        let fault = params
            .chaos
            .as_ref()
            .and_then(|c| c.fault_for(spec.id, attempt));
        if fault == Some(ChaosFault::Timeout) {
            hydronas_telemetry::add("nas.trial.timeout", 1);
            let limit_s = params
                .trial_timeout_s
                .unwrap_or_else(|| trial_duration_s(spec));
            return (
                failed_outcome(spec, TrialFailure::Timeout { limit_s }),
                attempt,
                backoff_s,
            );
        }
        let inject = permanent_fail
            || (transient_fail && attempt == 1)
            || fault == Some(ChaosFault::Transient);
        let caught = silenced_catch_unwind(AssertUnwindSafe(|| {
            if fault == Some(ChaosFault::Panic) {
                panic!(
                    "chaos: injected panic (trial {}, attempt {attempt})",
                    spec.id
                );
            }
            run_trial(
                spec,
                evaluator,
                metrics,
                inject,
                attempt_seed(params.seed, attempt),
            )
        }));
        let outcome = match caught {
            Ok(outcome) => outcome,
            Err(payload) => {
                hydronas_telemetry::add("nas.trial.panic", 1);
                failed_outcome(spec, TrialFailure::Panicked(panic_message(payload)))
            }
        };
        if !is_retryable(&outcome.status) || attempt >= max_attempts {
            return (outcome, attempt, backoff_s);
        }
        attempt += 1;
        backoff_s += params.retry.backoff_s(attempt);
    }
}

/// Optional sweep machinery: journaling, observability, worker sizing.
/// `SweepOptions::default()` reproduces plain [`run_experiment`].
#[derive(Default)]
#[deprecated(
    since = "0.2.0",
    note = "use `Sweep::builder()` with `with_journal` / `with_workers` and `run_with(sink)`"
)]
pub struct SweepOptions<'a, 'b> {
    /// Write-ahead journal: replayed if the file already has records,
    /// appended to as live trials finish.
    pub journal: Option<&'a Path>,
    /// Progress event receiver.
    pub sink: Option<&'b mut dyn ProgressSink>,
    /// Worker thread count; defaults to the available parallelism.
    /// Results are byte-identical for any value (trial outcomes are pure
    /// functions of `(spec, config)` and the database is re-ordered by
    /// id), so this only trades memory for throughput.
    pub workers: Option<usize>,
}

/// A finished sweep: the ordered database, its execution counters, and
/// an account of anything a degraded run lost.
#[derive(Clone, Debug)]
pub struct SweepReport {
    pub db: ExperimentDb,
    pub stats: SweepStats,
    /// What was lost to cancellation, deadlines, or timeouts.
    /// [`DegradationReport::is_degraded`] is `false` for healthy runs.
    pub degradation: DegradationReport,
}

/// The resolved configuration `run_sweep_inner` executes — everything
/// the builder collects, in one place. Internal: the public surface is
/// [`crate::sweep::SweepBuilder`].
pub(crate) struct SweepParams {
    pub seed: u64,
    pub input_hw: usize,
    pub injected_failures: usize,
    pub transient_failures: usize,
    pub retry: RetryPolicy,
    pub journal: Option<PathBuf>,
    pub workers: Option<usize>,
    pub cancel: CancelToken,
    pub trial_timeout_s: Option<f64>,
    pub max_wall_s: Option<f64>,
    pub chaos: Option<ChaosConfig>,
}

impl SweepParams {
    /// Lifts a legacy [`SchedulerConfig`] (whose `max_attempts` the
    /// retry policy subsumes) into the full parameter set.
    pub(crate) fn from_config(config: &SchedulerConfig) -> SweepParams {
        SweepParams {
            seed: config.seed,
            input_hw: config.input_hw,
            injected_failures: config.injected_failures,
            transient_failures: config.transient_failures,
            retry: RetryPolicy::new(config.max_attempts),
            journal: None,
            workers: None,
            cancel: CancelToken::new(),
            trial_timeout_s: None,
            max_wall_s: None,
            chaos: None,
        }
    }
}

fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Is this a terminal cancelled outcome (token fired mid-evaluation)?
fn is_cancelled_outcome(outcome: &TrialOutcome) -> bool {
    matches!(&outcome.status, TrialStatus::Failed(msg)
        if FailureCause::from_status(msg) == Some(FailureCause::Cancelled))
}

/// The engine behind [`crate::sweep::Sweep`] and the deprecated
/// [`run_sweep`] shim: runs `trials` on the worker pool and collects an
/// ordered database, with optional journaling, progress reporting,
/// cancellation, deadlines, and chaos injection.
///
/// When `params.journal` points at a journal with existing records
/// (e.g. from a killed or cancelled sweep), those trials are replayed
/// instead of re-run and only the missing ids are scheduled; the result
/// is byte-identical to an uninterrupted sweep. Journal records that do
/// not match the scheduled trial set are rejected as
/// [`SweepError::StaleJournal`].
///
/// Degradation contract: cancellation and deadlines are *not* errors.
/// A degraded sweep stops claiming trials, drains the ones in flight
/// (discarding any that report `cancelled` — they are re-run on
/// resume), flushes the journal, and returns a partial report whose
/// [`DegradationReport`] lists per-cause counts and skipped ids.
pub(crate) fn run_sweep_inner(
    trials: &[TrialSpec],
    evaluator: &dyn Evaluator,
    params: &SweepParams,
    mut sink: Option<&mut dyn ProgressSink>,
) -> Result<SweepReport, SweepError> {
    // Build both failure sets once, up front — membership tests sit on
    // the per-trial hot path.
    let permanent: HashSet<usize> =
        injected_failure_ids(trials, params.seed, params.injected_failures)
            .into_iter()
            .collect();
    // One lazily-filled metrics slot per distinct architecture, shared
    // read-only by the whole worker pool (4.8x fewer graph builds than
    // trials on the paper grid: 1,728 trials, 360 distinct graphs).
    let metrics = GraphMetricsCache::for_trials(trials.iter(), params.input_hw);
    let transient: HashSet<usize> =
        transient_failure_ids(trials, params.seed, params.transient_failures, &permanent)
            .into_iter()
            .collect();

    let mut journal = None;
    let mut replayed: HashMap<usize, TrialRecord> = HashMap::new();
    if let Some(path) = params.journal.as_deref() {
        let (j, records) = Journal::resume(path).map_err(|source| SweepError::Journal {
            path: path.to_path_buf(),
            source,
        })?;
        let by_id: HashMap<usize, &TrialSpec> = trials.iter().map(|t| (t.id, t)).collect();
        for record in records {
            let id = record.outcome.spec.id;
            match by_id.get(&id) {
                Some(spec) if **spec == record.outcome.spec => {
                    replayed.insert(id, record);
                }
                _ => {
                    return Err(SweepError::StaleJournal {
                        path: path.to_path_buf(),
                        trial_id: id,
                    })
                }
            }
        }
        journal = Some(j);
    }

    let mut degradation = DegradationReport::default();

    // Deadline pre-walk: admit trials in id order until their cumulative
    // simulated cost exceeds the wall budget; skip the rest up front.
    // Computed statically — before any scheduling — so the admitted set
    // is identical for 1 worker or 32, and identical again on resume
    // (replayed trials count as already-spent budget).
    let mut deadline_skipped: HashSet<usize> = HashSet::new();
    if let Some(budget_s) = params.max_wall_s {
        let mut in_order: Vec<&TrialSpec> = trials.iter().collect();
        in_order.sort_by_key(|t| t.id);
        let mut spent_s = 0.0;
        let mut exhausted = false;
        for t in in_order {
            if !exhausted {
                spent_s += trial_duration_s(t);
                exhausted = spent_s > budget_s;
            }
            if exhausted && !replayed.contains_key(&t.id) {
                deadline_skipped.insert(t.id);
            }
        }
        degradation.deadline_exhausted = !deadline_skipped.is_empty();
    }

    let pending: Vec<&TrialSpec> = trials
        .iter()
        .filter(|t| !replayed.contains_key(&t.id) && !deadline_skipped.contains(&t.id))
        .collect();

    let mut stats = SweepStats {
        scheduled: trials.len(),
        replayed: replayed.len(),
        sim_total_s: pending.iter().map(|t| trial_duration_s(t)).sum(),
        ..Default::default()
    };
    for record in replayed.values() {
        if record.outcome.is_valid() {
            stats.completed += 1;
        } else {
            stats.failed += 1;
        }
        stats.retried += record.attempts.saturating_sub(1);
    }

    // One span covers the whole sweep; per-trial spans open on the
    // worker threads (true thread attribution in the Chrome trace).
    let mut sweep_span = hydronas_telemetry::span("nas.sweep", "sweep");
    sweep_span.attr("scheduled", trials.len());
    sweep_span.attr("replayed", stats.replayed);
    sweep_span.sim_s(stats.sim_total_s);

    let started = Instant::now();
    if let Some(sink) = sink.as_deref_mut() {
        sink.on_event(&SweepEvent::Started { stats: &stats });
    }

    let workers = params
        .workers
        .unwrap_or_else(default_workers)
        .clamp(1, pending.len().max(1));
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = crossbeam::channel::unbounded::<(TrialOutcome, usize, f64, f64)>();

    let mut live: Vec<TrialRecord> = Vec::with_capacity(pending.len());
    // Ids with a terminal outcome in the database (used to compute the
    // skipped set after a cancellation).
    let mut landed: HashSet<usize> = HashSet::new();
    let cancel = &params.cancel;
    let (pending, cursor, permanent, transient, metrics) =
        (&pending, &cursor, &permanent, &transient, &metrics);
    let collected: Result<(), SweepError> = std::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            s.spawn(move || loop {
                // Cancellation point: checked before claiming each
                // trial, so a fired token stops new work immediately
                // while the trial in flight (if any) drains normally.
                if cancel.is_cancelled() {
                    break;
                }
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(spec) = pending.get(idx) else { break };
                // The `enabled` guard keeps the format! off the hot path
                // of uninstrumented sweeps.
                let mut trial_span = hydronas_telemetry::enabled().then(|| {
                    let mut sp =
                        hydronas_telemetry::span("nas.trial", &format!("trial {}", spec.id));
                    sp.attr("id", spec.id);
                    sp.attr("key", spec.key());
                    sp.sim_s(trial_duration_s(spec));
                    sp
                });
                let t0 = Instant::now();
                let (outcome, attempts, backoff_s) = run_trial_with_retry(
                    spec,
                    evaluator,
                    params,
                    metrics,
                    permanent.contains(&spec.id),
                    transient.contains(&spec.id),
                );
                if let Some(sp) = trial_span.as_mut() {
                    sp.attr("attempts", attempts);
                }
                drop(trial_span);
                // A send error means the collector bailed on a journal
                // I/O failure; just drain the remaining work.
                let _ = tx.send((outcome, attempts, t0.elapsed().as_secs_f64(), backoff_s));
            });
        }
        drop(tx);
        for (outcome, attempts, wall_s, backoff_s) in rx.iter() {
            degradation.backoff_sim_s += backoff_s;
            // Cancelled outcomes never reach the journal or the
            // database: the trial's real result is unknowable (training
            // stopped mid-way), so a resumed sweep must re-run it.
            // Recording it would freeze the torn state forever and break
            // resume byte-identity.
            if is_cancelled_outcome(&outcome) {
                degradation.cancelled_in_flight += 1;
                continue;
            }
            if let TrialStatus::Failed(msg) = &outcome.status {
                match FailureCause::from_status(msg) {
                    Some(FailureCause::Timeout) => degradation.timeout_trials += 1,
                    Some(FailureCause::Transient) => degradation.transient_trials += 1,
                    Some(FailureCause::Invalid) => degradation.invalid_trials += 1,
                    _ => {}
                }
            }
            landed.insert(outcome.spec.id);
            let record = TrialRecord { attempts, outcome };
            // Write-ahead: the journal line lands before the record is
            // admitted to the in-memory database.
            if let Some(j) = journal.as_mut() {
                j.append(&record).map_err(|source| SweepError::Journal {
                    path: params.journal.clone().expect("journal path set"),
                    source,
                })?;
            }
            if record.outcome.is_valid() {
                stats.completed += 1;
            } else {
                stats.failed += 1;
            }
            stats.retried += attempts - 1;
            stats.sim_done_s += trial_duration_s(&record.outcome.spec);
            stats.wall_s = started.elapsed().as_secs_f64();
            // Telemetry rides the same stream the progress sink sees:
            // per-trial wall time and the sweep's progress/ETA series
            // (all wall-clock derived, so they live outside the
            // deterministic outputs).
            if hydronas_telemetry::enabled() {
                hydronas_telemetry::record_value("nas.trial.wall_s", wall_s);
                let step = stats.finished() as f64;
                hydronas_telemetry::push_series("nas.sweep.sim_done_s", step, stats.sim_done_s);
                if let Some(eta) = stats.eta_s() {
                    hydronas_telemetry::push_series("nas.sweep.eta_s", step, eta);
                }
            }
            if let Some(sink) = sink.as_deref_mut() {
                sink.on_event(&SweepEvent::Trial {
                    outcome: &record.outcome,
                    attempts,
                    wall_s,
                    stats: &stats,
                });
            }
            live.push(record);
        }
        Ok(())
    });
    collected?;

    // Degradation accounting after the pool drains: anything scheduled
    // but absent from the database is "skipped".
    degradation.cancelled = params.cancel.is_cancelled();
    let mut skipped: Vec<usize> = deadline_skipped.into_iter().collect();
    if degradation.cancelled {
        hydronas_telemetry::add("nas.sweep.cancelled", 1);
        skipped.extend(
            pending
                .iter()
                .filter(|t| !landed.contains(&t.id))
                .map(|t| t.id),
        );
    }
    skipped.sort_unstable();
    degradation.skipped = skipped;
    if !degradation.skipped.is_empty() {
        hydronas_telemetry::add("nas.sweep.skipped", degradation.skipped.len() as u64);
    }
    if degradation.is_degraded() {
        sweep_span.attr("degraded", degradation.summary());
    }

    stats.wall_s = started.elapsed().as_secs_f64();
    let mut outcomes: Vec<TrialOutcome> = replayed
        .into_values()
        .map(|r| r.outcome)
        .chain(live.into_iter().map(|r| r.outcome))
        .collect();
    outcomes.sort_by_key(|o| o.spec.id);
    if let Some(sink) = sink {
        if degradation.is_degraded() {
            sink.on_event(&SweepEvent::Degraded {
                report: &degradation,
                stats: &stats,
            });
        }
        sink.on_event(&SweepEvent::Finished { stats: &stats });
    }
    Ok(SweepReport {
        db: ExperimentDb { outcomes },
        stats,
        degradation,
    })
}

/// Runs a set of trials on the worker pool and collects an ordered
/// database, with optional journaling and progress reporting.
#[deprecated(
    since = "0.2.0",
    note = "use `Sweep::builder()` — e.g. `Sweep::builder().with_trials(trials).with_journal(path).run_with(sink)`"
)]
#[allow(deprecated)]
pub fn run_sweep(
    trials: &[TrialSpec],
    evaluator: &dyn Evaluator,
    config: &SchedulerConfig,
    options: SweepOptions,
) -> io::Result<SweepReport> {
    let params = SweepParams {
        journal: options.journal.map(Path::to_path_buf),
        workers: options.workers,
        ..SweepParams::from_config(config)
    };
    run_sweep_inner(trials, evaluator, &params, options.sink).map_err(io::Error::from)
}

/// Runs a set of trials in parallel and collects an ordered database.
pub fn run_experiment(
    trials: &[TrialSpec],
    evaluator: &dyn Evaluator,
    config: &SchedulerConfig,
) -> ExperimentDb {
    run_sweep_inner(trials, evaluator, &SweepParams::from_config(config), None)
        .expect("a sweep without a journal performs no I/O")
        .db
}

/// The paper's full experiment: all 1,728 grid trials.
pub fn run_full_grid(evaluator: &dyn Evaluator, config: &SchedulerConfig) -> ExperimentDb {
    run_experiment(&full_grid(&SearchSpace::paper()), evaluator, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::SurrogateEvaluator;
    use crate::progress::CollectingSink;
    use crate::space::{full_grid, SearchSpace};
    use crate::sweep::Sweep;

    #[test]
    fn failure_injection_is_deterministic_and_exact() {
        let trials = full_grid(&SearchSpace::paper());
        let a = injected_failure_ids(&trials, 1, 11);
        let b = injected_failure_ids(&trials, 1, 11);
        assert_eq!(a, b);
        assert_eq!(a.len(), 11);
        let c = injected_failure_ids(&trials, 2, 11);
        assert_ne!(a, c);
    }

    #[test]
    fn transient_set_is_disjoint_from_permanent() {
        let trials = full_grid(&SearchSpace::paper());
        let permanent: HashSet<usize> = injected_failure_ids(&trials, 3, 11).into_iter().collect();
        let transient = transient_failure_ids(&trials, 3, 20, &permanent);
        assert_eq!(transient.len(), 20);
        assert!(transient.iter().all(|id| !permanent.contains(id)));
    }

    #[test]
    fn attempt_seeds_are_distinct_and_stable() {
        assert_eq!(attempt_seed(3, 1), 3, "first attempt keeps the master seed");
        let s2 = attempt_seed(3, 2);
        let s3 = attempt_seed(3, 3);
        assert_ne!(s2, 3);
        assert_ne!(s2, s3);
        assert_eq!(s2, attempt_seed(3, 2), "derivation is pure");
    }

    #[test]
    fn small_experiment_round_trips() {
        let trials: Vec<_> = full_grid(&SearchSpace::paper())
            .into_iter()
            .take(24)
            .collect();
        let config = SchedulerConfig {
            injected_failures: 2,
            ..Default::default()
        };
        let db = run_experiment(&trials, &SurrogateEvaluator::default(), &config);
        assert_eq!(db.outcomes.len(), 24);
        assert_eq!(db.valid().len(), 22);
        // Ordered by id despite parallel execution.
        for (i, o) in db.outcomes.iter().enumerate() {
            assert_eq!(o.spec.id, trials[i].id);
        }
        // Valid outcomes carry all three objectives.
        for o in db.valid() {
            assert!(o.accuracy > 0.0);
            assert!(o.latency_ms > 0.0);
            assert!(o.memory_mb > 0.0);
            assert_eq!(o.per_device_ms.len(), 4);
        }
    }

    #[test]
    fn rerun_reproduces_identical_database() {
        let trials: Vec<_> = full_grid(&SearchSpace::paper())
            .into_iter()
            .take(16)
            .collect();
        let config = SchedulerConfig::default();
        let ev = SurrogateEvaluator::default();
        let a = run_experiment(&trials, &ev, &config);
        let b = run_experiment(&trials, &ev, &config);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn full_grid_yields_1717_valid_outcomes() {
        let config = SchedulerConfig::default();
        let db = run_full_grid(&SurrogateEvaluator::default(), &config);
        assert_eq!(db.outcomes.len(), 1728);
        assert_eq!(db.valid().len(), 1717, "the paper's valid trial count");
    }

    #[test]
    fn transient_failures_recover_on_retry() {
        let trials: Vec<_> = full_grid(&SearchSpace::paper())
            .into_iter()
            .take(24)
            .collect();
        let mut sink = CollectingSink::default();
        let report = Sweep::builder()
            .with_trials(trials)
            .with_injected_failures(0)
            .with_transient_failures(3)
            .with_retry(RetryPolicy::new(3))
            .run_with(&mut sink)
            .unwrap();
        // Every trial recovers; exactly the transient ones took 2 attempts.
        assert_eq!(report.db.valid().len(), 24);
        assert!(!report.degradation.is_degraded());
        assert_eq!(report.stats.retried, 3);
        assert_eq!(
            sink.trials
                .iter()
                .filter(|(_, attempts, _)| *attempts == 2)
                .count(),
            3
        );
        assert_eq!(sink.started, 1);
        assert_eq!(sink.finished, 1);
    }

    #[test]
    fn max_attempts_one_disables_retry() {
        let trials: Vec<_> = full_grid(&SearchSpace::paper())
            .into_iter()
            .take(12)
            .collect();
        let report = Sweep::builder()
            .with_trials(trials)
            .with_injected_failures(0)
            .with_transient_failures(2)
            .with_retry(RetryPolicy::new(1))
            .run()
            .unwrap();
        assert_eq!(report.db.valid().len(), 10);
        assert_eq!(report.stats.failed, 2);
        assert_eq!(report.stats.retried, 0);
    }

    #[test]
    fn permanent_failures_exhaust_the_retry_budget() {
        let trials: Vec<_> = full_grid(&SearchSpace::paper())
            .into_iter()
            .take(12)
            .collect();
        let mut sink = CollectingSink::default();
        let report = Sweep::builder()
            .with_trials(trials)
            .with_injected_failures(2)
            .with_retry(RetryPolicy::new(3))
            .run_with(&mut sink)
            .unwrap();
        assert_eq!(report.stats.failed, 2);
        // Each permanent failure burned all three attempts.
        assert_eq!(report.stats.retried, 4);
        assert_eq!(
            sink.trials
                .iter()
                .filter(|(_, attempts, _)| *attempts == 3)
                .count(),
            2
        );
    }

    #[test]
    fn worker_count_does_not_change_the_database() {
        // 32 workers deliberately exceeds the old hard cap of 8 (and any
        // plausible core count): oversubscription must not perturb the
        // database either.
        let trials: Vec<_> = full_grid(&SearchSpace::paper())
            .into_iter()
            .take(48)
            .collect();
        let mut json = Vec::new();
        for workers in [1, 7, 32] {
            let report = Sweep::builder()
                .with_trials(trials.clone())
                .with_injected_failures(2)
                .with_workers(workers)
                .run()
                .unwrap();
            json.push(report.db.to_json());
        }
        assert_eq!(json[0], json[1]);
        assert_eq!(json[0], json[2], "32 workers must match a serial sweep");
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_run_sweep_shim_matches_the_builder() {
        // The shim must stay a faithful adapter until callers migrate.
        let trials: Vec<_> = full_grid(&SearchSpace::paper())
            .into_iter()
            .take(12)
            .collect();
        let config = SchedulerConfig {
            injected_failures: 1,
            ..Default::default()
        };
        let old = run_sweep(
            &trials,
            &SurrogateEvaluator::default(),
            &config,
            SweepOptions::default(),
        )
        .unwrap();
        let new = Sweep::builder()
            .with_trials(trials)
            .with_injected_failures(1)
            .run()
            .unwrap();
        assert_eq!(old.db.to_json(), new.db.to_json());
    }

    #[test]
    fn pre_cancelled_sweep_returns_an_empty_partial_report() {
        let trials: Vec<_> = full_grid(&SearchSpace::paper())
            .into_iter()
            .take(12)
            .collect();
        let ids: Vec<usize> = trials.iter().map(|t| t.id).collect();
        let cancel = CancelToken::new();
        cancel.cancel();
        let mut sink = CollectingSink::default();
        let report = Sweep::builder()
            .with_trials(trials)
            .with_cancel(cancel)
            .run_with(&mut sink)
            .unwrap();
        assert_eq!(report.db.outcomes.len(), 0);
        assert!(report.degradation.cancelled);
        assert!(report.degradation.is_degraded());
        assert_eq!(report.degradation.skipped, ids);
        assert!(sink.degraded.is_some(), "sink must see the Degraded event");
    }

    #[test]
    fn per_trial_timeout_fails_expensive_trials_deterministically() {
        let trials: Vec<_> = full_grid(&SearchSpace::paper())
            .into_iter()
            .take(24)
            .collect();
        let limit_s = {
            // Median simulated duration: roughly half the trials exceed.
            let mut d: Vec<f64> = trials.iter().map(trial_duration_s).collect();
            d.sort_by(|a, b| a.partial_cmp(b).unwrap());
            d[d.len() / 2]
        };
        let expect_timeouts = trials
            .iter()
            .filter(|t| trial_duration_s(t) > limit_s)
            .count();
        assert!(expect_timeouts > 0, "test premise: some trials exceed");
        let run = || {
            Sweep::builder()
                .with_trials(trials.clone())
                .with_injected_failures(0)
                .with_trial_timeout_s(limit_s)
                .run()
                .unwrap()
        };
        let a = run();
        assert_eq!(a.degradation.timeout_trials, expect_timeouts);
        assert!(a.degradation.is_degraded());
        assert_eq!(a.db.outcomes.len(), 24, "timeouts still land in the db");
        assert_eq!(a.db.valid().len(), 24 - expect_timeouts);
        assert_eq!(a.db.to_json(), run().db.to_json(), "timeouts are pure");
    }

    #[test]
    fn max_wall_budget_admits_an_id_ordered_prefix() {
        let trials: Vec<_> = full_grid(&SearchSpace::paper())
            .into_iter()
            .take(24)
            .collect();
        let total: f64 = trials.iter().map(trial_duration_s).sum();
        let report = Sweep::builder()
            .with_trials(trials.clone())
            .with_injected_failures(0)
            .with_max_wall_s(total / 2.0)
            .run()
            .unwrap();
        assert!(report.degradation.deadline_exhausted);
        let skipped = &report.degradation.skipped;
        assert!(!skipped.is_empty());
        // The skipped set is a suffix in id order: everything after the
        // first trial that blew the budget.
        let min_skipped = skipped[0];
        for t in &trials {
            assert_eq!(
                skipped.contains(&t.id),
                t.id >= min_skipped,
                "trial {} breaks the prefix property",
                t.id
            );
        }
        assert_eq!(report.db.outcomes.len(), 24 - skipped.len());
    }

    #[test]
    fn chaos_transients_are_absorbed_by_retries() {
        let trials: Vec<_> = full_grid(&SearchSpace::paper())
            .into_iter()
            .take(24)
            .collect();
        let report = Sweep::builder()
            .with_trials(trials)
            .with_injected_failures(0)
            .with_chaos(ChaosConfig::new(11).with_transients(200))
            .with_retry(RetryPolicy::new(4).with_backoff(1.0, 2.0))
            .run()
            .unwrap();
        // 20% per-attempt transient rate with 4 attempts: losing a trial
        // needs 4 consecutive faults (p = 0.0016 per trial).
        assert_eq!(report.db.valid().len(), 24);
        assert!(report.stats.retried > 0, "chaos must have injected faults");
        assert!(
            report.degradation.backoff_sim_s > 0.0,
            "retries must accrue simulated backoff"
        );
        assert!(!report.degradation.is_degraded());
    }

    #[test]
    fn chaos_panics_are_caught_not_propagated() {
        let trials: Vec<_> = full_grid(&SearchSpace::paper())
            .into_iter()
            .take(16)
            .collect();
        // Panic on every attempt: all trials exhaust retries and fail
        // with a Panicked status, but the sweep itself survives.
        let report = Sweep::builder()
            .with_trials(trials)
            .with_injected_failures(0)
            .with_chaos(ChaosConfig::new(5).with_panics(1000))
            .with_retry(RetryPolicy::new(2))
            .run()
            .unwrap();
        assert_eq!(report.db.valid().len(), 0);
        assert_eq!(report.stats.failed, 16);
        assert_eq!(report.degradation.transient_trials, 16);
        for o in &report.db.outcomes {
            match &o.status {
                TrialStatus::Failed(msg) => {
                    assert!(msg.starts_with("panicked"), "{msg}")
                }
                other => panic!("expected failure, got {other:?}"),
            }
        }
    }

    #[test]
    fn chaos_schedule_is_worker_count_invariant() {
        let trials: Vec<_> = full_grid(&SearchSpace::paper())
            .into_iter()
            .take(24)
            .collect();
        let run = |workers| {
            Sweep::builder()
                .with_trials(trials.clone())
                .with_chaos(ChaosConfig::new(9).with_timeouts(100).with_transients(200))
                .with_workers(workers)
                .run()
                .unwrap()
        };
        let a = run(1);
        let b = run(8);
        assert_eq!(a.db.to_json(), b.db.to_json());
        assert_eq!(a.degradation, b.degradation);
    }
}
