//! Checkpointed, observable trial scheduling with deterministic failure
//! injection and bounded retries.
//!
//! Trials are independent, so they fan out over a scoped worker pool
//! (one OS thread per core, pulling indices off a shared atomic cursor);
//! results stream through a crossbeam channel into the collector, which
//! journals each terminal outcome ([`crate::journal`]), feeds the
//! progress sink ([`crate::progress`]), and finally re-orders by trial
//! id so the database is reproducible regardless of scheduling order.
//!
//! Determinism contract: every trial's outcome is a pure function of
//! `(spec, config)` — attempt `k` evaluates with [`attempt_seed`]`(seed,
//! k)` and the injected failure sets are seed-derived — so a sweep
//! resumed from a journal is byte-identical to an uninterrupted one.

use crate::clock::trial_duration_s;
use crate::evaluator::{key_hash, Evaluator, TrialFailure};
use crate::experiment::{ExperimentDb, TrialOutcome, TrialStatus};
use crate::journal::{Journal, TrialRecord};
use crate::metrics_cache::GraphMetricsCache;
use crate::progress::{ProgressSink, SweepEvent, SweepStats};
use crate::space::{full_grid, SearchSpace, TrialSpec};
use std::collections::{HashMap, HashSet};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Scheduler parameters.
#[derive(Clone, Debug)]
pub struct SchedulerConfig {
    /// Master seed for evaluation and failure injection.
    pub seed: u64,
    /// Tile edge used for latency prediction / memory measurement.
    pub input_hw: usize,
    /// How many trials fail with simulated environment errors. The paper
    /// schedules 1,728 trials and reports 1,717 valid outcomes, so the
    /// default is 11. These failures are *permanent*: they exhaust every
    /// retry attempt (the paper's lost trials stayed lost).
    pub injected_failures: usize,
    /// Retry budget per trial for environment failures (total attempts,
    /// so `1` disables retries). Attempt `k` evaluates with
    /// [`attempt_seed`]`(seed, k)`, keeping retried runs deterministic.
    pub max_attempts: usize,
    /// How many trials fail their *first* attempt with a transient
    /// environment error but succeed when retried — the recoverable
    /// counterpart of `injected_failures`, for exercising the retry
    /// path. Chosen deterministically, disjoint from the permanent set.
    pub transient_failures: usize,
}

impl Default for SchedulerConfig {
    /// The default master seed (3) is the smallest seed whose noise
    /// realization reproduces the paper's Table 4 cardinality — exactly
    /// five strictly non-dominated solutions with the published structure
    /// (all minimum-memory, three no-pool rows at the low latency level,
    /// two pool rows at roughly double latency with inflated lat_std).
    /// Nearby seeds give 2-7 rows of the same shape; the seed-sensitivity
    /// ablation in `hydronas-bench` quantifies this.
    fn default() -> SchedulerConfig {
        SchedulerConfig {
            seed: 3,
            input_hw: 32,
            injected_failures: 11,
            max_attempts: 3,
            transient_failures: 0,
        }
    }
}

/// splitmix64-style finalizer so a seed genuinely reshuffles hash-derived
/// selections (a plain XOR salt would preserve hash ordering).
fn mix64(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministically selects which trial keys fail permanently: the `n`
/// smallest key hashes (salted by seed) — stable across runs and
/// platforms.
pub fn injected_failure_ids(trials: &[TrialSpec], seed: u64, n: usize) -> Vec<usize> {
    let mut hashed: Vec<(u64, usize)> = trials
        .iter()
        .map(|t| (mix64(key_hash(&t.key()) ^ mix64(seed)), t.id))
        .collect();
    hashed.sort_unstable();
    hashed.into_iter().take(n).map(|(_, id)| id).collect()
}

/// Salt separating the transient-failure stream from the permanent one.
const TRANSIENT_SALT: u64 = 0xA076_1D64_78BD_642F;

/// Deterministically selects which trials fail their first attempt with
/// a *recoverable* environment error. Disjoint from `permanent` so the
/// two failure populations never overlap.
pub fn transient_failure_ids(
    trials: &[TrialSpec],
    seed: u64,
    n: usize,
    permanent: &HashSet<usize>,
) -> Vec<usize> {
    injected_failure_ids(trials, seed ^ TRANSIENT_SALT, trials.len())
        .into_iter()
        .filter(|id| !permanent.contains(id))
        .take(n)
        .collect()
}

/// The evaluation seed for attempt `attempt` (1-based) of a trial. The
/// first attempt uses the master seed unchanged — so runs that never
/// retry are unaffected — and later attempts derive fresh deterministic
/// streams, so resumed and uninterrupted sweeps agree byte for byte.
pub fn attempt_seed(seed: u64, attempt: usize) -> u64 {
    if attempt <= 1 {
        seed
    } else {
        mix64(seed ^ (attempt as u64).wrapping_mul(TRANSIENT_SALT))
    }
}

/// Runs one attempt of a trial end-to-end: accuracy via the evaluator,
/// latency and memory via the shared graph-metrics cache (one graph
/// build per distinct architecture, not per trial).
fn run_trial(
    spec: &TrialSpec,
    evaluator: &dyn Evaluator,
    metrics: &GraphMetricsCache,
    fail: bool,
    seed: u64,
) -> TrialOutcome {
    let base = TrialOutcome {
        spec: spec.clone(),
        status: TrialStatus::Succeeded,
        accuracy: 0.0,
        fold_accuracies: Vec::new(),
        latency_ms: 0.0,
        latency_std_ms: 0.0,
        per_device_ms: Vec::new(),
        memory_mb: 0.0,
        train_seconds: 0.0,
    };
    if fail {
        return TrialOutcome {
            status: TrialStatus::Failed(TrialFailure::EnvironmentFailure.to_string()),
            ..base
        };
    }
    // The cache stores `from_arch` error strings verbatim, so failure
    // statuses match the previous build-a-graph-per-trial code byte for
    // byte.
    let arch_metrics = match metrics.get(&spec.arch) {
        Ok(m) => m,
        Err(e) => {
            return TrialOutcome {
                status: TrialStatus::Failed(TrialFailure::InvalidArchitecture(e).to_string()),
                ..base
            }
        }
    };
    match evaluator.evaluate(spec, seed) {
        Ok(eval) => TrialOutcome {
            accuracy: eval.mean_accuracy,
            fold_accuracies: eval.fold_accuracies,
            train_seconds: eval.train_seconds,
            ..base
        }
        .with_latency(&arch_metrics.latency, arch_metrics.memory_mb),
        Err(failure) => TrialOutcome {
            status: TrialStatus::Failed(failure.to_string()),
            ..base
        },
    }
}

/// Is this terminal status a (retryable) environment failure?
fn is_environment_failure(status: &TrialStatus) -> bool {
    matches!(status, TrialStatus::Failed(msg)
        if msg == &TrialFailure::EnvironmentFailure.to_string())
}

/// Runs a trial with the bounded retry policy: environment failures are
/// re-attempted up to `config.max_attempts` times, each attempt with its
/// own deterministic seed. Returns the terminal outcome and the number
/// of attempts spent.
fn run_trial_with_retry(
    spec: &TrialSpec,
    evaluator: &dyn Evaluator,
    config: &SchedulerConfig,
    metrics: &GraphMetricsCache,
    permanent_fail: bool,
    transient_fail: bool,
) -> (TrialOutcome, usize) {
    let max_attempts = config.max_attempts.max(1);
    let mut attempt = 1;
    loop {
        let inject = permanent_fail || (transient_fail && attempt == 1);
        let outcome = run_trial(
            spec,
            evaluator,
            metrics,
            inject,
            attempt_seed(config.seed, attempt),
        );
        if !is_environment_failure(&outcome.status) || attempt >= max_attempts {
            return (outcome, attempt);
        }
        attempt += 1;
    }
}

/// Optional sweep machinery: journaling, observability, worker sizing.
/// `SweepOptions::default()` reproduces plain [`run_experiment`].
#[derive(Default)]
pub struct SweepOptions<'a, 'b> {
    /// Write-ahead journal: replayed if the file already has records,
    /// appended to as live trials finish.
    pub journal: Option<&'a Path>,
    /// Progress event receiver.
    pub sink: Option<&'b mut dyn ProgressSink>,
    /// Worker thread count; defaults to the available parallelism.
    /// Results are byte-identical for any value (trial outcomes are pure
    /// functions of `(spec, config)` and the database is re-ordered by
    /// id), so this only trades memory for throughput.
    pub workers: Option<usize>,
}

/// A finished sweep: the ordered database plus its execution counters.
#[derive(Clone, Debug)]
pub struct SweepReport {
    pub db: ExperimentDb,
    pub stats: SweepStats,
}

fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs a set of trials on the worker pool and collects an ordered
/// database, with optional journaling and progress reporting.
///
/// When `options.journal` points at a journal with existing records
/// (e.g. from a killed sweep), those trials are replayed instead of
/// re-run and only the missing ids are scheduled; the result is
/// byte-identical to an uninterrupted sweep. Journal records that do not
/// match the scheduled trial set (a stale or foreign journal) are
/// rejected with `InvalidData`.
pub fn run_sweep(
    trials: &[TrialSpec],
    evaluator: &dyn Evaluator,
    config: &SchedulerConfig,
    mut options: SweepOptions,
) -> io::Result<SweepReport> {
    // Build both failure sets once, up front — membership tests sit on
    // the per-trial hot path.
    let permanent: HashSet<usize> =
        injected_failure_ids(trials, config.seed, config.injected_failures)
            .into_iter()
            .collect();
    // One lazily-filled metrics slot per distinct architecture, shared
    // read-only by the whole worker pool (4.8x fewer graph builds than
    // trials on the paper grid: 1,728 trials, 360 distinct graphs).
    let metrics = GraphMetricsCache::for_trials(trials.iter(), config.input_hw);
    let transient: HashSet<usize> =
        transient_failure_ids(trials, config.seed, config.transient_failures, &permanent)
            .into_iter()
            .collect();

    let mut journal = None;
    let mut replayed: HashMap<usize, TrialRecord> = HashMap::new();
    if let Some(path) = options.journal {
        let (j, records) = Journal::resume(path)?;
        let by_id: HashMap<usize, &TrialSpec> = trials.iter().map(|t| (t.id, t)).collect();
        for record in records {
            let id = record.outcome.spec.id;
            match by_id.get(&id) {
                Some(spec) if **spec == record.outcome.spec => {
                    replayed.insert(id, record);
                }
                _ => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "journal record for trial {id} does not match the scheduled trial set"
                        ),
                    ))
                }
            }
        }
        journal = Some(j);
    }

    let pending: Vec<&TrialSpec> = trials
        .iter()
        .filter(|t| !replayed.contains_key(&t.id))
        .collect();

    let mut stats = SweepStats {
        scheduled: trials.len(),
        replayed: replayed.len(),
        sim_total_s: pending.iter().map(|t| trial_duration_s(t)).sum(),
        ..Default::default()
    };
    for record in replayed.values() {
        if record.outcome.is_valid() {
            stats.completed += 1;
        } else {
            stats.failed += 1;
        }
        stats.retried += record.attempts.saturating_sub(1);
    }

    // One span covers the whole sweep; per-trial spans open on the
    // worker threads (true thread attribution in the Chrome trace).
    let mut sweep_span = hydronas_telemetry::span("nas.sweep", "sweep");
    sweep_span.attr("scheduled", trials.len());
    sweep_span.attr("replayed", stats.replayed);
    sweep_span.sim_s(stats.sim_total_s);

    let started = Instant::now();
    if let Some(sink) = options.sink.as_deref_mut() {
        sink.on_event(&SweepEvent::Started { stats: &stats });
    }

    let workers = options
        .workers
        .unwrap_or_else(default_workers)
        .clamp(1, pending.len().max(1));
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = crossbeam::channel::unbounded::<(TrialOutcome, usize, f64)>();

    let mut live: Vec<TrialRecord> = Vec::with_capacity(pending.len());
    let (pending, cursor, permanent, transient, metrics) =
        (&pending, &cursor, &permanent, &transient, &metrics);
    let collected: io::Result<()> = std::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            s.spawn(move || loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(spec) = pending.get(idx) else { break };
                // The `enabled` guard keeps the format! off the hot path
                // of uninstrumented sweeps.
                let mut trial_span = hydronas_telemetry::enabled().then(|| {
                    let mut sp =
                        hydronas_telemetry::span("nas.trial", &format!("trial {}", spec.id));
                    sp.attr("id", spec.id);
                    sp.attr("key", spec.key());
                    sp.sim_s(trial_duration_s(spec));
                    sp
                });
                let t0 = Instant::now();
                let (outcome, attempts) = run_trial_with_retry(
                    spec,
                    evaluator,
                    config,
                    metrics,
                    permanent.contains(&spec.id),
                    transient.contains(&spec.id),
                );
                if let Some(sp) = trial_span.as_mut() {
                    sp.attr("attempts", attempts);
                }
                drop(trial_span);
                // A send error means the collector bailed on a journal
                // I/O failure; just drain the remaining work.
                let _ = tx.send((outcome, attempts, t0.elapsed().as_secs_f64()));
            });
        }
        drop(tx);
        for (outcome, attempts, wall_s) in rx.iter() {
            let record = TrialRecord { attempts, outcome };
            // Write-ahead: the journal line lands before the record is
            // admitted to the in-memory database.
            if let Some(j) = journal.as_mut() {
                j.append(&record)?;
            }
            if record.outcome.is_valid() {
                stats.completed += 1;
            } else {
                stats.failed += 1;
            }
            stats.retried += attempts - 1;
            stats.sim_done_s += trial_duration_s(&record.outcome.spec);
            stats.wall_s = started.elapsed().as_secs_f64();
            // Telemetry rides the same stream the progress sink sees:
            // per-trial wall time and the sweep's progress/ETA series
            // (all wall-clock derived, so they live outside the
            // deterministic outputs).
            if hydronas_telemetry::enabled() {
                hydronas_telemetry::record_value("nas.trial.wall_s", wall_s);
                let step = stats.finished() as f64;
                hydronas_telemetry::push_series("nas.sweep.sim_done_s", step, stats.sim_done_s);
                if let Some(eta) = stats.eta_s() {
                    hydronas_telemetry::push_series("nas.sweep.eta_s", step, eta);
                }
            }
            if let Some(sink) = options.sink.as_deref_mut() {
                sink.on_event(&SweepEvent::Trial {
                    outcome: &record.outcome,
                    attempts,
                    wall_s,
                    stats: &stats,
                });
            }
            live.push(record);
        }
        Ok(())
    });
    collected?;

    stats.wall_s = started.elapsed().as_secs_f64();
    let mut outcomes: Vec<TrialOutcome> = replayed
        .into_values()
        .map(|r| r.outcome)
        .chain(live.into_iter().map(|r| r.outcome))
        .collect();
    outcomes.sort_by_key(|o| o.spec.id);
    if let Some(sink) = options.sink.as_deref_mut() {
        sink.on_event(&SweepEvent::Finished { stats: &stats });
    }
    Ok(SweepReport {
        db: ExperimentDb { outcomes },
        stats,
    })
}

/// Runs a set of trials in parallel and collects an ordered database.
pub fn run_experiment(
    trials: &[TrialSpec],
    evaluator: &dyn Evaluator,
    config: &SchedulerConfig,
) -> ExperimentDb {
    run_sweep(trials, evaluator, config, SweepOptions::default())
        .expect("a sweep without a journal performs no I/O")
        .db
}

/// The paper's full experiment: all 1,728 grid trials.
pub fn run_full_grid(evaluator: &dyn Evaluator, config: &SchedulerConfig) -> ExperimentDb {
    run_experiment(&full_grid(&SearchSpace::paper()), evaluator, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::SurrogateEvaluator;
    use crate::progress::CollectingSink;
    use crate::space::{full_grid, SearchSpace};

    #[test]
    fn failure_injection_is_deterministic_and_exact() {
        let trials = full_grid(&SearchSpace::paper());
        let a = injected_failure_ids(&trials, 1, 11);
        let b = injected_failure_ids(&trials, 1, 11);
        assert_eq!(a, b);
        assert_eq!(a.len(), 11);
        let c = injected_failure_ids(&trials, 2, 11);
        assert_ne!(a, c);
    }

    #[test]
    fn transient_set_is_disjoint_from_permanent() {
        let trials = full_grid(&SearchSpace::paper());
        let permanent: HashSet<usize> = injected_failure_ids(&trials, 3, 11).into_iter().collect();
        let transient = transient_failure_ids(&trials, 3, 20, &permanent);
        assert_eq!(transient.len(), 20);
        assert!(transient.iter().all(|id| !permanent.contains(id)));
    }

    #[test]
    fn attempt_seeds_are_distinct_and_stable() {
        assert_eq!(attempt_seed(3, 1), 3, "first attempt keeps the master seed");
        let s2 = attempt_seed(3, 2);
        let s3 = attempt_seed(3, 3);
        assert_ne!(s2, 3);
        assert_ne!(s2, s3);
        assert_eq!(s2, attempt_seed(3, 2), "derivation is pure");
    }

    #[test]
    fn small_experiment_round_trips() {
        let trials: Vec<_> = full_grid(&SearchSpace::paper())
            .into_iter()
            .take(24)
            .collect();
        let config = SchedulerConfig {
            injected_failures: 2,
            ..Default::default()
        };
        let db = run_experiment(&trials, &SurrogateEvaluator::default(), &config);
        assert_eq!(db.outcomes.len(), 24);
        assert_eq!(db.valid().len(), 22);
        // Ordered by id despite parallel execution.
        for (i, o) in db.outcomes.iter().enumerate() {
            assert_eq!(o.spec.id, trials[i].id);
        }
        // Valid outcomes carry all three objectives.
        for o in db.valid() {
            assert!(o.accuracy > 0.0);
            assert!(o.latency_ms > 0.0);
            assert!(o.memory_mb > 0.0);
            assert_eq!(o.per_device_ms.len(), 4);
        }
    }

    #[test]
    fn rerun_reproduces_identical_database() {
        let trials: Vec<_> = full_grid(&SearchSpace::paper())
            .into_iter()
            .take(16)
            .collect();
        let config = SchedulerConfig::default();
        let ev = SurrogateEvaluator::default();
        let a = run_experiment(&trials, &ev, &config);
        let b = run_experiment(&trials, &ev, &config);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn full_grid_yields_1717_valid_outcomes() {
        let config = SchedulerConfig::default();
        let db = run_full_grid(&SurrogateEvaluator::default(), &config);
        assert_eq!(db.outcomes.len(), 1728);
        assert_eq!(db.valid().len(), 1717, "the paper's valid trial count");
    }

    #[test]
    fn transient_failures_recover_on_retry() {
        let trials: Vec<_> = full_grid(&SearchSpace::paper())
            .into_iter()
            .take(24)
            .collect();
        let config = SchedulerConfig {
            injected_failures: 0,
            transient_failures: 3,
            max_attempts: 3,
            ..Default::default()
        };
        let mut sink = CollectingSink::default();
        let report = run_sweep(
            &trials,
            &SurrogateEvaluator::default(),
            &config,
            SweepOptions {
                sink: Some(&mut sink),
                ..Default::default()
            },
        )
        .unwrap();
        // Every trial recovers; exactly the transient ones took 2 attempts.
        assert_eq!(report.db.valid().len(), 24);
        assert_eq!(report.stats.retried, 3);
        assert_eq!(
            sink.trials
                .iter()
                .filter(|(_, attempts, _)| *attempts == 2)
                .count(),
            3
        );
        assert_eq!(sink.started, 1);
        assert_eq!(sink.finished, 1);
    }

    #[test]
    fn max_attempts_one_disables_retry() {
        let trials: Vec<_> = full_grid(&SearchSpace::paper())
            .into_iter()
            .take(12)
            .collect();
        let config = SchedulerConfig {
            injected_failures: 0,
            transient_failures: 2,
            max_attempts: 1,
            ..Default::default()
        };
        let report = run_sweep(
            &trials,
            &SurrogateEvaluator::default(),
            &config,
            SweepOptions::default(),
        )
        .unwrap();
        assert_eq!(report.db.valid().len(), 10);
        assert_eq!(report.stats.failed, 2);
        assert_eq!(report.stats.retried, 0);
    }

    #[test]
    fn permanent_failures_exhaust_the_retry_budget() {
        let trials: Vec<_> = full_grid(&SearchSpace::paper())
            .into_iter()
            .take(12)
            .collect();
        let config = SchedulerConfig {
            injected_failures: 2,
            max_attempts: 3,
            ..Default::default()
        };
        let mut sink = CollectingSink::default();
        let report = run_sweep(
            &trials,
            &SurrogateEvaluator::default(),
            &config,
            SweepOptions {
                sink: Some(&mut sink),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.stats.failed, 2);
        // Each permanent failure burned all three attempts.
        assert_eq!(report.stats.retried, 4);
        assert_eq!(
            sink.trials
                .iter()
                .filter(|(_, attempts, _)| *attempts == 3)
                .count(),
            2
        );
    }

    #[test]
    fn worker_count_does_not_change_the_database() {
        // 32 workers deliberately exceeds the old hard cap of 8 (and any
        // plausible core count): oversubscription must not perturb the
        // database either.
        let trials: Vec<_> = full_grid(&SearchSpace::paper())
            .into_iter()
            .take(48)
            .collect();
        let config = SchedulerConfig {
            injected_failures: 2,
            ..Default::default()
        };
        let ev = SurrogateEvaluator::default();
        let mut json = Vec::new();
        for workers in [1, 7, 32] {
            let report = run_sweep(
                &trials,
                &ev,
                &config,
                SweepOptions {
                    workers: Some(workers),
                    ..Default::default()
                },
            )
            .unwrap();
            json.push(report.db.to_json());
        }
        assert_eq!(json[0], json[1]);
        assert_eq!(json[0], json[2], "32 workers must match a serial sweep");
    }
}
