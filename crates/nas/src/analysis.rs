//! Post-hoc sensitivity analysis of the experiment database: which search
//! dimensions actually move each objective?
//!
//! The paper reads its Figure 4 radar plots qualitatively ("all winners
//! use the smallest kernel, minimal padding, larger stride"); this module
//! quantifies the same question with main-effects analysis — the mean
//! objective per level of each dimension, plus the explained-variance
//! share (eta squared) of a one-way decomposition — and answers the
//! paper's stated future-work question about "the correlation of
//! different neural architectures or input feature combinations".

use crate::experiment::{ExperimentDb, TrialOutcome};
use serde::{Deserialize, Serialize};

/// The objective a main-effect is computed against.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Response {
    Accuracy,
    LatencyMs,
    MemoryMb,
}

impl Response {
    fn of(&self, o: &TrialOutcome) -> f64 {
        match self {
            Response::Accuracy => o.accuracy,
            Response::LatencyMs => o.latency_ms,
            Response::MemoryMb => o.memory_mb,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            Response::Accuracy => "accuracy",
            Response::LatencyMs => "latency_ms",
            Response::MemoryMb => "memory_mb",
        }
    }
}

/// A search dimension that can be read off a trial.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Factor {
    Channels,
    BatchSize,
    KernelSize,
    Stride,
    Padding,
    PoolChoice,
    PoolKernel,
    PoolStride,
    InitialFeatures,
}

impl Factor {
    /// All analyzable dimensions.
    pub const ALL: [Factor; 9] = [
        Factor::Channels,
        Factor::BatchSize,
        Factor::KernelSize,
        Factor::Stride,
        Factor::Padding,
        Factor::PoolChoice,
        Factor::PoolKernel,
        Factor::PoolStride,
        Factor::InitialFeatures,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            Factor::Channels => "channels",
            Factor::BatchSize => "batch",
            Factor::KernelSize => "kernel_size",
            Factor::Stride => "stride",
            Factor::Padding => "padding",
            Factor::PoolChoice => "pool_choice",
            Factor::PoolKernel => "kernel_size_pool",
            Factor::PoolStride => "stride_pool",
            Factor::InitialFeatures => "initial_output_feature",
        }
    }

    /// The level this trial sits at.
    pub fn level(&self, o: &TrialOutcome) -> usize {
        let a = &o.spec.arch;
        match self {
            Factor::Channels => a.in_channels,
            Factor::BatchSize => o.spec.combo.batch_size,
            Factor::KernelSize => a.kernel_size,
            Factor::Stride => a.stride,
            Factor::Padding => a.padding,
            Factor::PoolChoice => a.pool_choice(),
            Factor::PoolKernel => o.spec.kernel_size_pool,
            Factor::PoolStride => o.spec.stride_pool,
            Factor::InitialFeatures => a.initial_features,
        }
    }
}

/// Main effect of one factor on one response.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MainEffect {
    pub factor: Factor,
    pub response: Response,
    /// `(level, mean response, count)` sorted by level.
    pub level_means: Vec<(usize, f64, usize)>,
    /// Between-level variance share of the total variance (eta squared,
    /// in `[0, 1]`).
    pub eta_squared: f64,
}

impl MainEffect {
    /// Largest minus smallest level mean (the effect magnitude).
    pub fn range(&self) -> f64 {
        let means: Vec<f64> = self.level_means.iter().map(|(_, m, _)| *m).collect();
        let hi = means.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let lo = means.iter().cloned().fold(f64::INFINITY, f64::min);
        hi - lo
    }

    /// The best level for the given sense (max for accuracy, min
    /// otherwise).
    pub fn best_level(&self) -> usize {
        let pick = |cmp: fn(&f64, &f64) -> std::cmp::Ordering| {
            self.level_means
                .iter()
                .max_by(|(_, a, _), (_, b, _)| cmp(a, b))
                .map(|(l, _, _)| *l)
                .expect("non-empty levels")
        };
        match self.response {
            Response::Accuracy => pick(|a, b| a.partial_cmp(b).unwrap()),
            _ => pick(|a, b| b.partial_cmp(a).unwrap()),
        }
    }
}

/// Computes the main effect of `factor` on `response` over the valid
/// outcomes.
pub fn main_effect(db: &ExperimentDb, factor: Factor, response: Response) -> MainEffect {
    let valid = db.valid();
    assert!(!valid.is_empty(), "no valid outcomes to analyze");
    let grand_mean = valid.iter().map(|o| response.of(o)).sum::<f64>() / valid.len() as f64;

    let mut levels: Vec<usize> = valid.iter().map(|o| factor.level(o)).collect();
    levels.sort_unstable();
    levels.dedup();

    let mut level_means = Vec::with_capacity(levels.len());
    let mut ss_between = 0.0f64;
    for &level in &levels {
        let values: Vec<f64> = valid
            .iter()
            .filter(|o| factor.level(o) == level)
            .map(|o| response.of(o))
            .collect();
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        ss_between += values.len() as f64 * (mean - grand_mean) * (mean - grand_mean);
        level_means.push((level, mean, values.len()));
    }
    let ss_total: f64 = valid
        .iter()
        .map(|o| {
            let v = response.of(o) - grand_mean;
            v * v
        })
        .sum();
    let eta_squared = if ss_total > 0.0 {
        ss_between / ss_total
    } else {
        0.0
    };
    MainEffect {
        factor,
        response,
        level_means,
        eta_squared,
    }
}

/// Full sensitivity table: every factor against one response, sorted by
/// explained variance descending.
pub fn sensitivity(db: &ExperimentDb, response: Response) -> Vec<MainEffect> {
    let mut effects: Vec<MainEffect> = Factor::ALL
        .iter()
        .map(|&f| main_effect(db, f, response))
        .collect();
    effects.sort_by(|a, b| {
        b.eta_squared
            .partial_cmp(&a.eta_squared)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    effects
}

/// Renders a sensitivity table as aligned text.
pub fn sensitivity_table(db: &ExperimentDb, response: Response) -> String {
    let effects = sensitivity(db, response);
    let mut out = format!(
        "Main effects on {} (eta^2 = explained variance share):\n",
        response.name()
    );
    out.push_str(&format!(
        "{:<24} {:>8} {:>10} {:>12}   per-level means\n",
        "factor", "eta^2", "range", "best level"
    ));
    for e in &effects {
        let levels: Vec<String> = e
            .level_means
            .iter()
            .map(|(l, m, _)| format!("{l}:{m:.2}"))
            .collect();
        out.push_str(&format!(
            "{:<24} {:>8.3} {:>10.2} {:>12}   {}\n",
            e.factor.name(),
            e.eta_squared,
            e.range(),
            e.best_level(),
            levels.join(" ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::SurrogateEvaluator;
    use crate::scheduler::{run_experiment, SchedulerConfig};
    use crate::space::{full_grid, SearchSpace};

    fn db() -> ExperimentDb {
        let trials: Vec<_> = full_grid(&SearchSpace::paper())
            .into_iter()
            .filter(|t| t.combo.batch_size == 16)
            .collect();
        run_experiment(
            &trials,
            &SurrogateEvaluator::default(),
            &SchedulerConfig {
                injected_failures: 0,
                ..Default::default()
            },
        )
    }

    #[test]
    fn eta_squared_is_a_variance_share() {
        let db = db();
        for factor in Factor::ALL {
            for response in [Response::Accuracy, Response::LatencyMs, Response::MemoryMb] {
                let e = main_effect(&db, factor, response);
                assert!(
                    (0.0..=1.0 + 1e-9).contains(&e.eta_squared),
                    "{:?}/{:?}: {}",
                    factor,
                    response,
                    e.eta_squared
                );
            }
        }
    }

    #[test]
    fn memory_is_dominated_by_feature_width() {
        // Memory depends almost entirely on initial_output_feature.
        let db = db();
        let effects = sensitivity(&db, Response::MemoryMb);
        assert_eq!(
            effects[0].factor,
            Factor::InitialFeatures,
            "{:?}",
            effects[0]
        );
        assert!(
            effects[0].eta_squared > 0.9,
            "eta {}",
            effects[0].eta_squared
        );
        assert_eq!(effects[0].best_level(), 32);
    }

    #[test]
    fn padding_and_kernel_drive_accuracy() {
        // The surrogate's largest accuracy effects come from the padding
        // interaction (k7/p0 is catastrophic) and downsampling.
        let db = db();
        let effects = sensitivity(&db, Response::Accuracy);
        let top3: Vec<Factor> = effects.iter().take(3).map(|e| e.factor).collect();
        assert!(top3.contains(&Factor::Padding), "top3 {:?}", top3);
        // Channels matter for accuracy (7 > 5) but explain less variance
        // than padding.
        let channels = effects
            .iter()
            .find(|e| e.factor == Factor::Channels)
            .unwrap();
        assert_eq!(channels.best_level(), 7);
    }

    #[test]
    fn latency_prefers_the_figure4_traits() {
        // The paper's Figure 4 commentary, quantified: small kernels,
        // larger stride, smallest width all reduce latency.
        let db = db();
        let best = |f: Factor| main_effect(&db, f, Response::LatencyMs).best_level();
        assert_eq!(best(Factor::InitialFeatures), 32);
        assert_eq!(best(Factor::Stride), 2);
        assert_eq!(best(Factor::PoolStride), 2, "more downsampling is faster");
        // Kernel size and pool_choice are deliberately NOT asserted:
        // averaged over the whole grid both are ambiguous (k3 stems with
        // padding 3 yield *larger* maps than k7 at stride 1, and pooling
        // trades the Myriad penalty against halved downstream compute) —
        // which is exactly why the paper's winners are specific
        // *combinations* (k3 + p1 + s2) rather than single settings.
    }

    #[test]
    fn level_counts_partition_the_population() {
        let db = db();
        let e = main_effect(&db, Factor::PoolChoice, Response::Accuracy);
        let total: usize = e.level_means.iter().map(|(_, _, n)| n).sum();
        assert_eq!(total, db.valid().len());
        assert_eq!(e.level_means.len(), 2);
    }

    #[test]
    fn table_renders_all_factors() {
        let db = db();
        let t = sensitivity_table(&db, Response::Accuracy);
        for f in Factor::ALL {
            assert!(t.contains(f.name()), "missing {}", f.name());
        }
        assert!(t.contains("eta^2"));
    }

    #[test]
    #[should_panic(expected = "no valid outcomes")]
    fn empty_db_panics() {
        let empty = ExperimentDb::default();
        let _ = main_effect(&empty, Factor::Channels, Response::Accuracy);
    }
}

/// Pearson correlation coefficient between two equal-length series.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "series length mismatch");
    assert!(xs.len() >= 2, "need at least two points");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx <= 0.0 || vy <= 0.0 {
        0.0
    } else {
        cov / (vx * vy).sqrt()
    }
}

/// Average ranks (ties share the mean rank).
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..xs.len()).collect();
    order.sort_by(|&a, &b| {
        xs[a]
            .partial_cmp(&xs[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut out = vec![0.0f64; xs.len()];
    let mut i = 0usize;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && xs[order[j + 1]] == xs[order[i]] {
            j += 1;
        }
        let mean_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            out[k] = mean_rank;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation (Pearson over average ranks; tie-safe).
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    pearson(&ranks(xs), &ranks(ys))
}

/// The pairwise Spearman correlation matrix of the three objectives over
/// the valid outcomes — the paper's future-work question about objective
/// interplay, answered from the data.
pub fn objective_correlations(db: &ExperimentDb) -> [[f64; 3]; 3] {
    let valid = db.valid();
    assert!(valid.len() >= 2, "need at least two valid outcomes");
    let series: [Vec<f64>; 3] = [
        valid.iter().map(|o| o.accuracy).collect(),
        valid.iter().map(|o| o.latency_ms).collect(),
        valid.iter().map(|o| o.memory_mb).collect(),
    ];
    let mut m = [[0.0f64; 3]; 3];
    for (i, si) in series.iter().enumerate() {
        for (j, sj) in series.iter().enumerate() {
            m[i][j] = spearman(si, sj);
        }
    }
    m
}

#[cfg(test)]
mod correlation_tests {
    use super::*;
    use crate::evaluator::SurrogateEvaluator;
    use crate::scheduler::{run_experiment, SchedulerConfig};
    use crate::space::{full_grid, SearchSpace};

    #[test]
    fn pearson_recognizes_perfect_relations() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let up = [2.0, 4.0, 6.0, 8.0];
        let down = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &up) - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &down) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&xs, &[5.0; 4]), 0.0);
    }

    #[test]
    fn spearman_is_rank_based() {
        // A monotone nonlinear relation: Spearman 1, Pearson < 1.
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys: Vec<f64> = xs.iter().map(|x: &f64| x.exp()).collect();
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
        assert!(pearson(&xs, &ys) < 1.0 - 1e-6);
    }

    #[test]
    fn ranks_handle_ties() {
        let r = ranks(&[3.0, 1.0, 3.0, 2.0]);
        assert_eq!(r, vec![3.5, 1.0, 3.5, 2.0]);
    }

    #[test]
    fn objective_correlations_match_the_study() {
        let trials: Vec<_> = full_grid(&SearchSpace::paper())
            .into_iter()
            .filter(|t| t.combo.batch_size == 16)
            .collect();
        let db = run_experiment(
            &trials,
            &SurrogateEvaluator::default(),
            &SchedulerConfig {
                injected_failures: 0,
                ..Default::default()
            },
        );
        let m = objective_correlations(&db);
        // Diagonal is 1.
        for (i, row) in m.iter().enumerate() {
            assert!((row[i] - 1.0).abs() < 1e-9);
        }
        // Symmetric.
        for (i, row) in m.iter().enumerate() {
            for (j, v) in row.iter().enumerate() {
                assert!((v - m[j][i]).abs() < 1e-9);
            }
        }
        // Latency and memory are positively correlated (both scale with
        // width) — the conflict driving the Pareto analysis is between
        // accuracy and the cost objectives being *weakly* coupled, so a
        // cheap accurate model exists at all.
        assert!(m[1][2] > 0.3, "lat-mem correlation {}", m[1][2]);
        // Accuracy is not strongly coupled to memory (width saturates).
        assert!(m[0][2].abs() < 0.4, "acc-mem correlation {}", m[0][2]);
    }
}
