//! Successive halving: multi-fidelity architecture search.
//!
//! The paper spends 5 folds x 5 epochs on *every* grid point; successive
//! halving (Jamieson & Talwalkar 2016) spends that budget adaptively —
//! evaluate many candidates cheaply (few folds), keep the best fraction,
//! re-evaluate the survivors at higher fidelity. On this study's
//! protocol the natural fidelity axis is the number of cross-validation
//! folds, so total cost is measured in fold-evaluations.

use crate::space::{InputCombo, SearchSpace, TrialSpec};
use crate::surrogate::surrogate_fold_accuracies;
use hydronas_graph::ModelGraph;
use hydronas_tensor::TensorRng;
use serde::{Deserialize, Serialize};

/// Successive-halving parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct HalvingConfig {
    /// Initial candidate count (rung 0).
    pub initial_candidates: usize,
    /// Survivor fraction denominator (classic eta = 2 or 3).
    pub eta: usize,
    /// Folds evaluated at rung 0; doubles per rung up to `max_folds`.
    pub min_folds: usize,
    /// Full-fidelity fold count (the paper's 5).
    pub max_folds: usize,
}

impl Default for HalvingConfig {
    fn default() -> HalvingConfig {
        HalvingConfig {
            initial_candidates: 64,
            eta: 2,
            min_folds: 1,
            max_folds: 5,
        }
    }
}

/// One rung's record.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Rung {
    pub folds: usize,
    /// `(spec, mean accuracy at this fidelity)` of every candidate
    /// evaluated at this rung.
    pub evaluated: Vec<(TrialSpec, f64)>,
}

/// Search outcome.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HalvingResult {
    pub rungs: Vec<Rung>,
    /// The surviving best candidate at full fidelity.
    pub best: (TrialSpec, f64),
    /// Total fold-evaluations spent (the budget unit).
    pub fold_evaluations: usize,
}

fn pick<T: Copy>(options: &[T], rng: &mut TensorRng) -> T {
    options[rng.index(options.len())]
}

/// Runs successive halving over random samples of the space using the
/// surrogate at variable fidelity. Deterministic per seed.
pub fn successive_halving(
    space: &SearchSpace,
    combo: InputCombo,
    config: &HalvingConfig,
    seed: u64,
) -> HalvingResult {
    assert!(config.eta >= 2, "eta must be at least 2");
    assert!(
        config.initial_candidates >= config.eta,
        "too few candidates"
    );
    assert!(config.min_folds >= 1 && config.min_folds <= config.max_folds);
    let mut rng = TensorRng::seed_from_u64(seed);

    // Rung-0 candidates.
    let mut candidates: Vec<TrialSpec> = Vec::with_capacity(config.initial_candidates);
    let mut id = 0usize;
    while candidates.len() < config.initial_candidates {
        let pool_choice = pick(&space.pool_choices, &mut rng);
        let arch = hydronas_graph::ArchConfig {
            in_channels: combo.channels,
            kernel_size: pick(&space.kernel_sizes, &mut rng),
            stride: pick(&space.strides, &mut rng),
            padding: pick(&space.paddings, &mut rng),
            pool: (pool_choice == 1).then_some(hydronas_graph::PoolConfig {
                kernel: pick(&space.pool_kernels, &mut rng),
                stride: pick(&space.pool_strides, &mut rng),
            }),
            initial_features: pick(&space.initial_features, &mut rng),
            num_classes: 2,
        };
        if ModelGraph::from_arch(&arch, 32).is_err() {
            continue;
        }
        candidates.push(TrialSpec {
            id,
            combo,
            arch,
            kernel_size_pool: arch.pool.map_or(3, |p| p.kernel),
            stride_pool: arch.pool.map_or(2, |p| p.stride),
        });
        id += 1;
    }

    let mut rungs = Vec::new();
    let mut fold_evaluations = 0usize;
    let mut folds = config.min_folds;
    loop {
        // Evaluate all current candidates at this fidelity. The fold
        // stream per candidate is fixed by its key, so higher rungs
        // *extend* earlier evaluations rather than redrawing them.
        let mut evaluated: Vec<(TrialSpec, f64)> = candidates
            .iter()
            .map(|spec| {
                let trial_seed = seed ^ crate::evaluator::key_hash(&spec.key());
                let accs =
                    surrogate_fold_accuracies(&spec.arch, spec.combo.batch_size, folds, trial_seed);
                fold_evaluations += folds;
                (spec.clone(), accs.iter().sum::<f64>() / folds as f64)
            })
            .collect();
        evaluated.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        rungs.push(Rung {
            folds,
            evaluated: evaluated.clone(),
        });

        if folds >= config.max_folds || evaluated.len() <= config.eta {
            let best = evaluated.into_iter().next().expect("non-empty rung");
            return HalvingResult {
                rungs,
                best,
                fold_evaluations,
            };
        }
        // Keep the top 1/eta, raise fidelity.
        let survivors = (evaluated.len() / config.eta).max(1);
        candidates = evaluated
            .into_iter()
            .take(survivors)
            .map(|(s, _)| s)
            .collect();
        folds = (folds * 2).min(config.max_folds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::surrogate::{arch_delta, baseline_anchor};

    const COMBO: InputCombo = InputCombo {
        channels: 7,
        batch_size: 16,
    };

    fn run(seed: u64) -> HalvingResult {
        successive_halving(
            &SearchSpace::paper(),
            COMBO,
            &HalvingConfig::default(),
            seed,
        )
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run(1);
        let b = run(1);
        assert_eq!(a.best.0.arch, b.best.0.arch);
        assert_eq!(a.fold_evaluations, b.fold_evaluations);
    }

    #[test]
    fn rung_structure_halves_and_doubles() {
        let r = run(2);
        assert!(r.rungs.len() >= 2);
        for pair in r.rungs.windows(2) {
            assert!(pair[1].evaluated.len() <= pair[0].evaluated.len() / 2 + 1);
            assert!(pair[1].folds >= pair[0].folds);
        }
        // Final rung reaches full fidelity.
        assert_eq!(r.rungs.last().unwrap().folds, 5);
    }

    #[test]
    fn halving_is_cheaper_than_full_fidelity_everywhere() {
        let r = run(3);
        let full_cost = 64 * 5; // every candidate at 5 folds
        assert!(
            r.fold_evaluations < full_cost,
            "halving spent {} >= {full_cost}",
            r.fold_evaluations
        );
    }

    #[test]
    fn winner_is_a_strong_configuration() {
        // The halving winner's *deterministic* quality (anchor + delta)
        // should be close to the global optimum (within a point).
        let r = run(4);
        let winner_quality = baseline_anchor(7, 16) + arch_delta(&r.best.0.arch);
        let optimum = baseline_anchor(7, 16) + 1.1; // k3 p1 ds2 f32
        assert!(
            winner_quality > optimum - 1.0,
            "winner {winner_quality} vs optimum {optimum}"
        );
    }

    #[test]
    fn survivors_are_the_rung_leaders() {
        let r = run(5);
        for pair in r.rungs.windows(2) {
            let survivor_keys: Vec<String> =
                pair[1].evaluated.iter().map(|(s, _)| s.key()).collect();
            let leaders: Vec<String> = pair[0]
                .evaluated
                .iter()
                .take(survivor_keys.len())
                .map(|(s, _)| s.key())
                .collect();
            for key in &survivor_keys {
                assert!(leaders.contains(key), "{key} was not a rung leader");
            }
        }
    }

    #[test]
    #[should_panic(expected = "eta must be at least 2")]
    fn eta_one_rejected() {
        let config = HalvingConfig {
            eta: 1,
            ..Default::default()
        };
        let _ = successive_halving(&SearchSpace::paper(), COMBO, &config, 0);
    }
}
