//! Search strategies beyond the paper's exhaustive grid.
//!
//! The paper (Section 5) flags the grid's cost and suggests search-space
//! streamlining as future work; these strategies quantify that headroom:
//! random search and regularized evolution (Real et al. 2019) both reach
//! near-front accuracy at a fraction of the trial budget (the ablation
//! bench compares them).

use crate::evaluator::Evaluator;
use crate::space::{InputCombo, SearchSpace, TrialSpec};
use hydronas_graph::{ArchConfig, PoolConfig};
use hydronas_tensor::TensorRng;
use serde::{Deserialize, Serialize};

/// Outcome of a budgeted search.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SearchResult {
    /// Every evaluated (spec, mean accuracy) pair in evaluation order.
    pub history: Vec<(TrialSpec, f64)>,
    /// Index into `history` of the best trial.
    pub best: usize,
}

impl SearchResult {
    pub fn best_accuracy(&self) -> f64 {
        self.history[self.best].1
    }

    pub fn best_spec(&self) -> &TrialSpec {
        &self.history[self.best].0
    }
}

fn pick<T: Copy>(options: &[T], rng: &mut TensorRng) -> T {
    options[rng.index(options.len())]
}

/// Samples one random configuration from the space.
fn sample_arch(space: &SearchSpace, channels: usize, rng: &mut TensorRng) -> ArchConfig {
    let pool_choice = pick(&space.pool_choices, rng);
    ArchConfig {
        in_channels: channels,
        kernel_size: pick(&space.kernel_sizes, rng),
        stride: pick(&space.strides, rng),
        padding: pick(&space.paddings, rng),
        pool: (pool_choice == 1).then_some(PoolConfig {
            kernel: pick(&space.pool_kernels, rng),
            stride: pick(&space.pool_strides, rng),
        }),
        initial_features: pick(&space.initial_features, rng),
        num_classes: 2,
    }
}

fn spec_of(arch: ArchConfig, combo: InputCombo, id: usize) -> TrialSpec {
    TrialSpec {
        id,
        combo,
        arch,
        kernel_size_pool: arch.pool.map_or(3, |p| p.kernel),
        stride_pool: arch.pool.map_or(2, |p| p.stride),
    }
}

/// Random search: `budget` uniform samples (with replacement).
pub fn random_search(
    space: &SearchSpace,
    combo: InputCombo,
    evaluator: &dyn Evaluator,
    budget: usize,
    seed: u64,
) -> SearchResult {
    assert!(budget > 0, "budget must be positive");
    let mut rng = TensorRng::seed_from_u64(seed);
    let mut history = Vec::with_capacity(budget);
    for id in 0..budget {
        let arch = sample_arch(space, combo.channels, &mut rng);
        let spec = spec_of(arch, combo, id);
        let acc = evaluator
            .evaluate(&spec, seed)
            .map(|o| o.mean_accuracy)
            .unwrap_or(0.0);
        history.push((spec, acc));
    }
    let best = history
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap();
    SearchResult { history, best }
}

/// Regularized-evolution parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct EvolutionConfig {
    pub population: usize,
    pub sample_size: usize,
    pub budget: usize,
}

impl Default for EvolutionConfig {
    fn default() -> EvolutionConfig {
        EvolutionConfig {
            population: 16,
            sample_size: 4,
            budget: 64,
        }
    }
}

/// Mutates one dimension of a configuration.
fn mutate(space: &SearchSpace, arch: &ArchConfig, rng: &mut TensorRng) -> ArchConfig {
    let mut out = *arch;
    match rng.index(5) {
        0 => out.kernel_size = pick(&space.kernel_sizes, rng),
        1 => out.stride = pick(&space.strides, rng),
        2 => out.padding = pick(&space.paddings, rng),
        3 => out.initial_features = pick(&space.initial_features, rng),
        _ => {
            let pool_choice = pick(&space.pool_choices, rng);
            out.pool = (pool_choice == 1).then_some(PoolConfig {
                kernel: pick(&space.pool_kernels, rng),
                stride: pick(&space.pool_strides, rng),
            });
        }
    }
    out
}

/// Regularized evolution (aging evolution): tournament parent selection,
/// single-dimension mutation, oldest member dies.
pub fn regularized_evolution(
    space: &SearchSpace,
    combo: InputCombo,
    evaluator: &dyn Evaluator,
    config: &EvolutionConfig,
    seed: u64,
) -> SearchResult {
    assert!(config.population >= 2, "population too small");
    assert!(config.sample_size >= 1 && config.sample_size <= config.population);
    assert!(
        config.budget >= config.population,
        "budget below population size"
    );
    let mut rng = TensorRng::seed_from_u64(seed);
    let mut history: Vec<(TrialSpec, f64)> = Vec::with_capacity(config.budget);
    // Ring buffer of (history index) for the living population.
    let mut population: std::collections::VecDeque<usize> =
        std::collections::VecDeque::with_capacity(config.population);

    fn eval(
        history: &mut Vec<(TrialSpec, f64)>,
        evaluator: &dyn Evaluator,
        arch: ArchConfig,
        combo: InputCombo,
        id: usize,
        seed: u64,
    ) {
        let spec = spec_of(arch, combo, id);
        let acc = evaluator
            .evaluate(&spec, seed)
            .map(|o| o.mean_accuracy)
            .unwrap_or(0.0);
        history.push((spec, acc));
    }

    for id in 0..config.population {
        let arch = sample_arch(space, combo.channels, &mut rng);
        eval(&mut history, evaluator, arch, combo, id, seed);
        population.push_back(id);
    }
    for id in config.population..config.budget {
        // Tournament: best of `sample_size` random living members.
        let mut best_idx = population[rng.index(population.len())];
        for _ in 1..config.sample_size {
            let candidate = population[rng.index(population.len())];
            if history[candidate].1 > history[best_idx].1 {
                best_idx = candidate;
            }
        }
        let child = mutate(space, &history[best_idx].0.arch, &mut rng);
        eval(&mut history, evaluator, child, combo, id, seed);
        population.push_back(id);
        population.pop_front(); // age out the oldest
    }

    let best = history
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap();
    SearchResult { history, best }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::SurrogateEvaluator;

    const COMBO: InputCombo = InputCombo {
        channels: 7,
        batch_size: 16,
    };

    #[test]
    fn random_search_finds_good_configs() {
        let res = random_search(
            &SearchSpace::paper(),
            COMBO,
            &SurrogateEvaluator::default(),
            48,
            5,
        );
        assert_eq!(res.history.len(), 48);
        // Baseline anchor is 95.37; 48 samples should find >= baseline-ish.
        assert!(res.best_accuracy() > 94.0, "best {}", res.best_accuracy());
    }

    #[test]
    fn random_search_is_deterministic() {
        let ev = SurrogateEvaluator::default();
        let a = random_search(&SearchSpace::paper(), COMBO, &ev, 16, 9);
        let b = random_search(&SearchSpace::paper(), COMBO, &ev, 16, 9);
        assert_eq!(a.best, b.best);
        assert_eq!(a.best_accuracy(), b.best_accuracy());
    }

    #[test]
    fn evolution_beats_its_own_initial_population() {
        let ev = SurrogateEvaluator::default();
        let config = EvolutionConfig {
            population: 8,
            sample_size: 3,
            budget: 48,
        };
        let res = regularized_evolution(&SearchSpace::paper(), COMBO, &ev, &config, 3);
        assert_eq!(res.history.len(), 48);
        let init_best = res.history[..8]
            .iter()
            .map(|(_, a)| *a)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            res.best_accuracy() >= init_best,
            "evolution regressed: {} < {init_best}",
            res.best_accuracy()
        );
    }

    #[test]
    fn evolution_converges_toward_known_winners() {
        // The surrogate's optimum uses k=3, p=1, ds=2, f=32; evolution
        // with a decent budget should concentrate there.
        let ev = SurrogateEvaluator::default();
        let config = EvolutionConfig {
            population: 12,
            sample_size: 4,
            budget: 120,
        };
        let res = regularized_evolution(&SearchSpace::paper(), COMBO, &ev, &config, 7);
        let best = res.best_spec();
        assert_eq!(best.arch.kernel_size, 3, "best {:?}", best.arch);
        assert_eq!(best.arch.padding, 1);
        assert!(res.best_accuracy() > 95.5, "best {}", res.best_accuracy());
    }

    #[test]
    fn mutation_changes_exactly_one_dimension_class() {
        let space = SearchSpace::paper();
        let mut rng = TensorRng::seed_from_u64(1);
        let base = ArchConfig::baseline(5);
        for _ in 0..50 {
            let m = mutate(&space, &base, &mut rng);
            let mut diffs = 0;
            diffs += usize::from(m.kernel_size != base.kernel_size);
            diffs += usize::from(m.stride != base.stride);
            diffs += usize::from(m.padding != base.padding);
            diffs += usize::from(m.initial_features != base.initial_features);
            diffs += usize::from(m.pool != base.pool);
            assert!(diffs <= 1, "mutation touched {diffs} dimensions");
        }
    }

    #[test]
    #[should_panic(expected = "budget below population")]
    fn evolution_rejects_tiny_budget() {
        let ev = SurrogateEvaluator::default();
        let config = EvolutionConfig {
            population: 8,
            sample_size: 2,
            budget: 4,
        };
        let _ = regularized_evolution(&SearchSpace::paper(), COMBO, &ev, &config, 0);
    }
}
