//! The typed, builder-style sweep API.
//!
//! [`Sweep::builder`] replaces the positional `run_sweep(trials,
//! evaluator, config, options)` entry point: every knob is a named
//! `with_*` method, the configuration structs are `#[non_exhaustive]`
//! (new knobs never break callers), and [`Sweep::run`] returns a typed
//! [`SweepError`] instead of a bare `io::Error`.
//!
//! ```no_run
//! use hydronas_nas::{space, SearchSpace, SurrogateEvaluator, Sweep};
//!
//! let trials = space::full_grid(&SearchSpace::paper());
//! let report = Sweep::builder()
//!     .with_trials(trials)
//!     .with_evaluator(SurrogateEvaluator::default())
//!     .with_seed(3)
//!     .with_journal("/tmp/sweep.jsonl")
//!     .run()
//!     .expect("journal path is writable");
//! assert_eq!(report.db.valid().len(), 1717);
//! ```
//!
//! ## Graceful degradation
//!
//! Cancellation ([`SweepBuilder::with_cancel`]), wall-clock budgets
//! ([`SweepBuilder::with_max_wall_s`]), and per-trial deadlines
//! ([`SweepBuilder::with_trial_timeout_s`]) never surface as errors: the
//! sweep drains in-flight trials, flushes its journal, and returns a
//! *partial* report whose [`DegradationReport`] says exactly what was
//! lost. Resuming the same configuration from the journal completes the
//! remainder and yields a database byte-identical to an uninterrupted
//! run.

use crate::chaos::ChaosConfig;
use crate::error::SweepError;
use crate::evaluator::{Evaluator, SurrogateEvaluator};
use crate::progress::ProgressSink;
use crate::scheduler::{run_sweep_inner, SchedulerConfig, SweepParams, SweepReport};
use crate::space::TrialSpec;
use hydronas_nn::CancelToken;
use std::path::PathBuf;

/// Bounded-retry policy with optional exponential backoff on the
/// simulated clock. Subsumes the old `SchedulerConfig::max_attempts`
/// knob: `RetryPolicy::new(n)` is exactly `max_attempts: n`.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub struct RetryPolicy {
    /// Total attempts per trial (so `1` disables retries). Attempt `k`
    /// evaluates with [`crate::scheduler::attempt_seed`]`(seed, k)`.
    pub max_attempts: usize,
    /// Simulated seconds slept before the first retry; `0.0` (the
    /// default) retries immediately, preserving pre-redesign behavior.
    pub backoff_base_s: f64,
    /// Multiplier applied to the backoff for each further retry.
    pub backoff_mult: f64,
}

impl RetryPolicy {
    /// A policy with `max_attempts` total attempts and no backoff.
    pub fn new(max_attempts: usize) -> RetryPolicy {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            backoff_base_s: 0.0,
            backoff_mult: 2.0,
        }
    }

    /// Adds exponential backoff: retry `r` (1-based) waits
    /// `base_s * mult^(r-1)` simulated seconds. Backoff is accounted in
    /// [`DegradationReport::backoff_sim_s`] only — it never perturbs
    /// trial outcomes, so enabling it keeps the database byte-identical.
    pub fn with_backoff(mut self, base_s: f64, mult: f64) -> RetryPolicy {
        self.backoff_base_s = base_s.max(0.0);
        self.backoff_mult = mult.max(1.0);
        self
    }

    /// Simulated seconds of backoff before attempt `attempt` (2-based;
    /// attempt 1 never waits).
    pub fn backoff_s(&self, attempt: usize) -> f64 {
        if attempt <= 1 || self.backoff_base_s <= 0.0 {
            return 0.0;
        }
        self.backoff_base_s * self.backoff_mult.powi(attempt as i32 - 2)
    }
}

impl Default for RetryPolicy {
    /// Three attempts, no backoff — the historical scheduler default.
    fn default() -> RetryPolicy {
        RetryPolicy::new(3)
    }
}

/// What a degraded sweep lost, by cause.
///
/// Attached to every [`SweepReport`]; [`DegradationReport::is_degraded`]
/// is `false` for a healthy run (the paper's 11 expected environment
/// failures do not count as degradation — they are part of the
/// reproduced experiment).
#[derive(Clone, Debug, Default, PartialEq)]
#[non_exhaustive]
pub struct DegradationReport {
    /// The sweep's [`CancelToken`] fired before every trial finished.
    pub cancelled: bool,
    /// The `max_wall_s` budget excluded trials before the sweep started.
    pub deadline_exhausted: bool,
    /// Terminal failures whose cause is a per-trial timeout.
    pub timeout_trials: usize,
    /// Terminal failures whose cause is transient (environment failures,
    /// caught panics) — includes the deliberately injected ones.
    pub transient_trials: usize,
    /// Terminal failures whose cause is deterministic (invalid
    /// architecture, divergence).
    pub invalid_trials: usize,
    /// Trials that were claimed by a worker but whose outcome was
    /// discarded because cancellation fired mid-evaluation. Never
    /// journaled: a resumed sweep re-runs them, which is what keeps
    /// cancel-then-resume byte-identical.
    pub cancelled_in_flight: usize,
    /// Ids of scheduled trials that have no outcome in the report's
    /// database (deadline-excluded or unreached after cancellation),
    /// sorted ascending.
    pub skipped: Vec<usize>,
    /// Simulated seconds spent in retry backoff across all trials.
    pub backoff_sim_s: f64,
}

impl DegradationReport {
    /// True when the report's database is missing scheduled work — i.e.
    /// the sweep was cancelled, deadline-limited, or lost trials to
    /// timeouts. Plain (injected) failures do not degrade a sweep.
    pub fn is_degraded(&self) -> bool {
        self.cancelled
            || self.deadline_exhausted
            || self.timeout_trials > 0
            || self.cancelled_in_flight > 0
            || !self.skipped.is_empty()
    }

    /// Human-readable account of what was lost (empty when healthy).
    pub fn summary(&self) -> String {
        if !self.is_degraded() {
            return String::new();
        }
        let mut lines = Vec::new();
        if self.cancelled {
            lines.push("sweep cancelled by token".to_string());
        }
        if self.deadline_exhausted {
            lines.push("wall-clock budget exhausted".to_string());
        }
        if self.timeout_trials > 0 {
            lines.push(format!(
                "{} trial(s) hit the per-trial timeout",
                self.timeout_trials
            ));
        }
        if self.cancelled_in_flight > 0 {
            lines.push(format!(
                "{} in-flight trial(s) discarded at cancellation",
                self.cancelled_in_flight
            ));
        }
        if !self.skipped.is_empty() {
            lines.push(format!(
                "{} trial(s) skipped without an outcome",
                self.skipped.len()
            ));
        }
        lines.join("\n")
    }
}

/// Builder for a [`Sweep`]. Obtain via [`Sweep::builder`]; every method
/// is optional — the zero-configuration default runs the surrogate
/// evaluator over an empty trial list with the paper's scheduler seed.
pub struct SweepBuilder {
    trials: Vec<TrialSpec>,
    evaluator: Option<Box<dyn Evaluator>>,
    params: SweepParams,
}

impl SweepBuilder {
    /// The trials to schedule (ids must be unique; order is irrelevant —
    /// the database is always sorted by id).
    pub fn with_trials(mut self, trials: Vec<TrialSpec>) -> SweepBuilder {
        self.trials = trials;
        self
    }

    /// The evaluator producing each trial's accuracy objective. Defaults
    /// to [`SurrogateEvaluator::default`].
    pub fn with_evaluator(mut self, evaluator: impl Evaluator + 'static) -> SweepBuilder {
        self.evaluator = Some(Box::new(evaluator));
        self
    }

    /// Master seed for evaluation and failure injection (default 3, the
    /// paper-reproducing seed).
    pub fn with_seed(mut self, seed: u64) -> SweepBuilder {
        self.params.seed = seed;
        self
    }

    /// Tile edge for latency prediction / memory measurement
    /// (default 32).
    pub fn with_input_hw(mut self, input_hw: usize) -> SweepBuilder {
        self.params.input_hw = input_hw;
        self
    }

    /// How many trials fail permanently with simulated environment
    /// errors (default 11, the paper's lost-trial count).
    pub fn with_injected_failures(mut self, n: usize) -> SweepBuilder {
        self.params.injected_failures = n;
        self
    }

    /// How many trials fail their first attempt recoverably (default 0).
    pub fn with_transient_failures(mut self, n: usize) -> SweepBuilder {
        self.params.transient_failures = n;
        self
    }

    /// Retry/backoff policy (default: 3 attempts, no backoff).
    pub fn with_retry(mut self, retry: RetryPolicy) -> SweepBuilder {
        self.params.retry = retry;
        self
    }

    /// Write-ahead journal path: replayed if the file already has
    /// records, appended to as live trials finish.
    pub fn with_journal(mut self, path: impl Into<PathBuf>) -> SweepBuilder {
        self.params.journal = Some(path.into());
        self
    }

    /// Worker thread count (default: available parallelism). The
    /// database is byte-identical for any value.
    pub fn with_workers(mut self, workers: usize) -> SweepBuilder {
        self.params.workers = Some(workers);
        self
    }

    /// Cooperative cancellation: workers stop claiming trials once the
    /// token fires, in-flight trials drain, and the report comes back
    /// partial (see [`DegradationReport`]). Share a clone of the same
    /// token with a [`crate::RealTrainer`] to also stop training at
    /// epoch boundaries.
    pub fn with_cancel(mut self, cancel: CancelToken) -> SweepBuilder {
        self.params.cancel = cancel;
        self
    }

    /// Per-trial deadline on the simulated clock: a trial whose
    /// simulated training time exceeds `limit_s` fails with
    /// `TrialFailure::Timeout` instead of running. Deterministic (the
    /// simulated duration is a pure function of the spec), journaled,
    /// never retried.
    pub fn with_trial_timeout_s(mut self, limit_s: f64) -> SweepBuilder {
        self.params.trial_timeout_s = Some(limit_s);
        self
    }

    /// Whole-sweep budget on the simulated clock: trials are admitted in
    /// id order until their cumulative simulated cost exceeds
    /// `budget_s`; the rest are skipped up front. The admitted set is a
    /// pure function of `(trials, budget_s)` — independent of worker
    /// count and scheduling order — so deadline-limited sweeps stay
    /// deterministic and resumable.
    pub fn with_max_wall_s(mut self, budget_s: f64) -> SweepBuilder {
        self.params.max_wall_s = Some(budget_s);
        self
    }

    /// Deterministic fault injection for robustness tests (see
    /// [`crate::chaos`]).
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> SweepBuilder {
        self.params.chaos = Some(chaos);
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> Sweep {
        Sweep {
            trials: self.trials,
            evaluator: self
                .evaluator
                .unwrap_or_else(|| Box::new(SurrogateEvaluator::default())),
            params: self.params,
        }
    }

    /// Convenience: build and run without a progress sink.
    pub fn run(self) -> Result<SweepReport, SweepError> {
        self.build().run()
    }

    /// Convenience: build and run with a progress sink.
    pub fn run_with(self, sink: &mut dyn ProgressSink) -> Result<SweepReport, SweepError> {
        self.build().run_with(sink)
    }
}

/// A fully configured sweep. Reusable: [`Sweep::run`] borrows, so the
/// same configuration can run repeatedly (results are deterministic).
pub struct Sweep {
    trials: Vec<TrialSpec>,
    evaluator: Box<dyn Evaluator>,
    params: SweepParams,
}

impl Sweep {
    /// Starts a builder with the historical defaults (seed 3, 11
    /// injected failures, 3 attempts, surrogate evaluator).
    pub fn builder() -> SweepBuilder {
        let defaults = SchedulerConfig::default();
        SweepBuilder {
            trials: Vec::new(),
            evaluator: None,
            params: SweepParams::from_config(&defaults),
        }
    }

    /// The scheduled trial specs.
    pub fn trials(&self) -> &[TrialSpec] {
        &self.trials
    }

    /// Runs the sweep without progress reporting.
    pub fn run(&self) -> Result<SweepReport, SweepError> {
        run_sweep_inner(&self.trials, &*self.evaluator, &self.params, None)
    }

    /// Runs the sweep, streaming [`crate::SweepEvent`]s into `sink`.
    pub fn run_with(&self, sink: &mut dyn ProgressSink) -> Result<SweepReport, SweepError> {
        run_sweep_inner(&self.trials, &*self.evaluator, &self.params, Some(sink))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_policy_backoff_grows_exponentially() {
        let p = RetryPolicy::new(4).with_backoff(2.0, 3.0);
        assert_eq!(p.backoff_s(1), 0.0);
        assert_eq!(p.backoff_s(2), 2.0);
        assert_eq!(p.backoff_s(3), 6.0);
        assert_eq!(p.backoff_s(4), 18.0);
    }

    #[test]
    fn retry_policy_without_backoff_never_waits() {
        let p = RetryPolicy::new(3);
        for attempt in 1..=5 {
            assert_eq!(p.backoff_s(attempt), 0.0);
        }
    }

    #[test]
    fn zero_attempts_clamps_to_one() {
        assert_eq!(RetryPolicy::new(0).max_attempts, 1);
    }

    #[test]
    fn healthy_report_is_not_degraded() {
        let r = DegradationReport {
            transient_trials: 11, // the paper's expected losses
            invalid_trials: 2,
            ..Default::default()
        };
        assert!(!r.is_degraded());
        assert!(r.summary().is_empty());
    }

    #[test]
    fn each_degradation_cause_flips_the_flag() {
        let base = DegradationReport::default();
        assert!(!base.is_degraded());
        let cancelled = DegradationReport {
            cancelled: true,
            ..base.clone()
        };
        assert!(cancelled.is_degraded());
        assert!(cancelled.summary().contains("cancelled"));
        let deadline = DegradationReport {
            deadline_exhausted: true,
            skipped: vec![5, 6],
            ..base.clone()
        };
        assert!(deadline.is_degraded());
        assert!(deadline.summary().contains("budget"));
        assert!(deadline.summary().contains("2 trial(s) skipped"));
        let timeouts = DegradationReport {
            timeout_trials: 3,
            ..base
        };
        assert!(timeouts.is_degraded());
    }

    #[test]
    fn builder_runs_an_empty_sweep() {
        let report = Sweep::builder().run().unwrap();
        assert_eq!(report.db.outcomes.len(), 0);
        assert!(!report.degradation.is_degraded());
    }
}
