//! Satellite regression: the telemetry decision is latched once per
//! request at submit time. A request admitted *before* a session opens
//! must not touch that session's gauges when it completes *inside* the
//! session — the old code re-checked `enabled()` on each side and leaked
//! a permanent `-1` into `infer.inflight`.
//!
//! This test is alone in its binary on purpose: its premise is that no
//! session is active during the pre-session submit, which no other
//! in-process test may be allowed to violate.

use hydronas_infer::{Engine, EngineConfig, ExecutionPlan, ShedPolicy};
use hydronas_nn::ResNet;
use hydronas_tensor::{uniform, Tensor, TensorRng};
use std::sync::Arc;
use std::time::Duration;

fn input(seed: u64) -> Tensor {
    let mut rng = TensorRng::seed_from_u64(seed);
    uniform(&[5, 16, 16], -1.0, 1.0, &mut rng)
}

#[test]
fn session_starting_mid_request_sees_no_gauge_leak() {
    let mut arch = hydronas_graph::ArchConfig::baseline(5);
    arch.initial_features = 4;
    let mut rng = TensorRng::seed_from_u64(7);
    let model = ResNet::new(&arch, &mut rng);
    let plan = Arc::new(ExecutionPlan::builder(&model).build().unwrap());
    let engine = Engine::start(
        plan,
        EngineConfig {
            workers: 1,
            max_batch: 8,
            max_wait_ticks: 2,
            tick_us: 200,
            queue_capacity: 16,
            shed_policy: ShedPolicy::RejectNew,
            manual_clock: true,
        },
    );

    // Submitted with no session active: telemetry latched off.
    let before = engine.submit(input(1)).unwrap();

    // The session opens while that request is still queued.
    let session = hydronas_telemetry::session();
    while engine.stats().completed < 1 {
        engine.advance_ticks(1);
        std::thread::sleep(Duration::from_micros(200));
    }
    before.wait().unwrap();

    let m = session.metrics();
    assert!(
        !m.gauges.contains_key("infer.inflight"),
        "pre-session request leaked into the session's inflight gauge: {:?}",
        m.gauges.get("infer.inflight")
    );
    assert!(
        !m.gauges.contains_key("infer.queue.depth"),
        "pre-session request leaked into the session's depth gauge: {:?}",
        m.gauges.get("infer.queue.depth")
    );

    // A request submitted inside the session balances the gauge cleanly.
    let inside = engine.submit(input(2)).unwrap();
    while engine.stats().completed < 2 {
        engine.advance_ticks(1);
        std::thread::sleep(Duration::from_micros(200));
    }
    inside.wait().unwrap();
    let m = session.metrics();
    let inflight = m.gauges.get("infer.inflight").expect("in-session gauge");
    assert_eq!(inflight.value, 0, "inflight must return to zero");
    assert_eq!(inflight.high_watermark, 1);
    let depth = m.gauges.get("infer.queue.depth").expect("in-session gauge");
    assert_eq!(depth.value, 0);
    assert_eq!(depth.high_watermark, 1);
}
