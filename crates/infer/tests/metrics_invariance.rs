//! Worker-count invariance of engine serving metrics (satellite: a
//! multi-worker `Engine` run must produce metrics whose deterministic
//! sections are byte-identical at 1/4/8 workers).
//!
//! The workload is single-stream (each `infer` blocks before the next
//! submit) with `max_batch = 1` and a zero-tick collection window, so
//! the batch composition is identical no matter how many workers race:
//! every request executes alone, and batch-size/fill histograms see the
//! same exactly-representable values in the same multiset.

use hydronas_infer::{Engine, EngineConfig, ExecutionPlan};
use hydronas_nn::ResNet;
use hydronas_tensor::{uniform, Tensor, TensorRng};
use std::sync::Arc;

const REQUESTS: usize = 10;

fn tiny_plan() -> Arc<ExecutionPlan> {
    let mut arch = hydronas_graph::ArchConfig::baseline(5);
    arch.initial_features = 4;
    let mut rng = TensorRng::seed_from_u64(7);
    let model = ResNet::new(&arch, &mut rng);
    Arc::new(ExecutionPlan::builder(&model).build().unwrap())
}

fn fixed_inputs() -> Vec<Tensor> {
    let mut rng = TensorRng::seed_from_u64(11);
    (0..REQUESTS)
        .map(|_| uniform(&[5, 16, 16], -1.0, 1.0, &mut rng))
        .collect()
}

/// Runs the fixed single-stream workload under a session and returns
/// the serialized deterministic metric sections plus quantile counts.
fn serve_with_workers(workers: usize) -> (String, String, String, Vec<(String, u64)>) {
    let plan = tiny_plan();
    let session = hydronas_telemetry::session();
    {
        let engine = Engine::start(
            plan,
            EngineConfig {
                workers,
                max_batch: 1,
                max_wait_ticks: 0,
                tick_us: 50,
                ..EngineConfig::default()
            },
        );
        for x in fixed_inputs() {
            engine.infer(x).unwrap();
        }
    } // drop joins workers, so every span/metric is recorded
    let m = session.metrics();
    let quantile_counts = m
        .quantiles
        .iter()
        .map(|(k, v)| (k.clone(), v.count))
        .collect();
    // Scratch-arena counters are per-thread cache statistics (each
    // worker warms its own arena) and compute-pool counters are
    // scheduling statistics (steal/starvation counts are racy by
    // design), so both sit outside the invariance contract. Numeric
    // *outputs* stay byte-identical at any thread count — only the
    // cache/scheduling bookkeeping varies.
    let counters: std::collections::BTreeMap<String, u64> = m
        .counters
        .iter()
        .filter(|(k, _)| !k.contains(".arena.") && !k.contains(".pool."))
        .map(|(k, v)| (k.clone(), *v))
        .collect();
    let histograms: std::collections::BTreeMap<String, _> = m
        .histograms
        .iter()
        .filter(|(k, _)| !k.contains(".pool."))
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    (
        serde_json::to_string(&counters).unwrap(),
        serde_json::to_string(&m.gauges).unwrap(),
        serde_json::to_string(&histograms).unwrap(),
        quantile_counts,
    )
}

#[test]
fn serving_metrics_are_worker_count_invariant() {
    let (c1, g1, h1, q1) = serve_with_workers(1);
    let (c4, g4, h4, q4) = serve_with_workers(4);
    let (c8, g8, h8, q8) = serve_with_workers(8);

    // Counters: requests/batches/samples are pure functions of the
    // workload here (single-stream, batch-of-one).
    assert_eq!(c1, c4, "counters differ between 1 and 4 workers");
    assert_eq!(c1, c8, "counters differ between 1 and 8 workers");
    assert!(c1.contains("\"infer.requests\":10"), "{c1}");
    assert!(c1.contains("\"infer.batches\":10"), "{c1}");
    assert!(c1.contains("\"infer.samples\":10"), "{c1}");

    // Gauges: depth/inflight return to 0 and peak at 1 (single-stream).
    assert_eq!(g1, g4, "gauges differ between 1 and 4 workers");
    assert_eq!(g1, g8, "gauges differ between 1 and 8 workers");
    assert!(g1.contains("infer.queue.depth"), "{g1}");
    assert!(g1.contains("infer.inflight"), "{g1}");

    // Histograms: batch size is always 1.0 and fill 100.0 — exactly
    // representable, so even the float sums agree bytewise.
    assert_eq!(h1, h4, "histograms differ between 1 and 4 workers");
    assert_eq!(h1, h8, "histograms differ between 1 and 8 workers");
    assert!(h1.contains("infer.batch.size"), "{h1}");
    assert!(h1.contains("infer.batch.fill_pct"), "{h1}");

    // Quantile histograms hold wall-clock latencies, so only their
    // counts (one observation per request/batch) are invariant.
    assert_eq!(q1, q4, "quantile counts differ between 1 and 4 workers");
    assert_eq!(q1, q8, "quantile counts differ between 1 and 8 workers");
    let keys: Vec<&str> = q1.iter().map(|(k, _)| k.as_str()).collect();
    for key in [
        "infer.request.wait_wall_ms",
        "infer.request.total_wall_ms",
        "infer.batch.exec_wall_ms",
        "infer.batch.collect_wall_ms",
    ] {
        assert!(
            keys.contains(&key),
            "missing quantile key {key} in {keys:?}"
        );
    }
    for (key, count) in &q1 {
        let expected = REQUESTS as u64;
        assert_eq!(*count, expected, "unexpected count for {key}");
    }
}
