//! Overload-protection behaviour of the batching engine: bounded
//! admission, per-request deadlines, graceful drain, retry, and the
//! accounting-bug regression tests from the serving-engine fix PR.
//!
//! Every test opens a telemetry session as its *first* action and keeps
//! all plan/engine work inside the session scope. Sessions are
//! process-exclusive, so this discipline serializes the tests in this
//! binary and no test can pollute another's counters.
//!
//! Manual-clock tests never fire a single `advance_ticks` and hope: a
//! worker may not have entered its collection window yet when the tick
//! lands, and a window opened *after* the advance would wait forever.
//! [`advance_until`] advances one tick at a time until the observable
//! condition holds, which is race-free and — because shed/expiry
//! outcomes depend only on arrival order and *whether* the budget
//! lapsed, not on how many extra ticks follow — changes no outcome.

use hydronas_infer::{
    Engine, EngineConfig, ExecutionPlan, InferError, InferRequest, RetryConfig, ShedPolicy,
};
use hydronas_nn::ResNet;
use hydronas_telemetry::QuantileHistogram;
use hydronas_tensor::{uniform, Tensor, TensorRng};
use std::sync::Arc;
use std::time::Duration;

fn tiny_plan() -> Arc<ExecutionPlan> {
    let mut arch = hydronas_graph::ArchConfig::baseline(5);
    arch.initial_features = 4;
    let mut rng = TensorRng::seed_from_u64(7);
    let model = ResNet::new(&arch, &mut rng);
    Arc::new(ExecutionPlan::builder(&model).build().unwrap())
}

fn input(seed: u64) -> Tensor {
    let mut rng = TensorRng::seed_from_u64(seed);
    uniform(&[5, 16, 16], -1.0, 1.0, &mut rng)
}

/// Advances the manual clock one tick at a time until `cond` holds.
fn advance_until(engine: &Engine, what: &str, cond: impl Fn() -> bool) {
    for _ in 0..20_000 {
        if cond() {
            return;
        }
        engine.advance_ticks(1);
        std::thread::sleep(Duration::from_micros(200));
    }
    panic!("manual clock advanced 20000 ticks without: {what}");
}

/// A parked-worker engine: `max_batch > queue_capacity` and a manual
/// clock mean no worker can drain until ticks advance, so admission
/// outcomes are a pure function of arrival order.
fn parked_config(workers: usize, queue_capacity: usize, shed_policy: ShedPolicy) -> EngineConfig {
    EngineConfig {
        workers,
        max_batch: queue_capacity + 4,
        max_wait_ticks: 2,
        tick_us: 200,
        queue_capacity,
        shed_policy,
        manual_clock: true,
    }
}

/// The deterministic sections of one overload run: Debug-formatted
/// engine stats plus the worker-count-invariant metric sections.
struct RunFingerprint {
    stats: String,
    counters: String,
    gauges: String,
    histograms: String,
    quantile_counts: Vec<(String, u64)>,
    outcomes: Vec<&'static str>,
}

/// Runs the canonical overload arrival sequence — 12 zero-deadline
/// submissions into a capacity-4 queue with parked workers, then enough
/// ticks to expire everything — and fingerprints the result.
fn overload_run(workers: usize, shed_policy: ShedPolicy) -> RunFingerprint {
    let session = hydronas_telemetry::session();
    let plan = tiny_plan();
    let engine = Engine::start(plan, parked_config(workers, 4, shed_policy));
    let mut handles = Vec::new();
    let mut outcomes = vec![""; 12];
    for k in 0..12u64 {
        match engine.submit(InferRequest::new(input(100 + k)).deadline_ticks(0)) {
            Ok(h) => handles.push((k as usize, h)),
            Err(InferError::QueueFull) => outcomes[k as usize] = "queue_full",
            Err(e) => panic!("unexpected submit error {e:?}"),
        }
    }
    advance_until(&engine, "all queued requests expired", || {
        let s = engine.stats();
        s.expired + s.shed == s.requests
    });
    for (k, h) in handles {
        outcomes[k] = match h.wait() {
            Err(InferError::Shed) => "shed",
            Err(InferError::DeadlineExceeded) => "expired",
            other => panic!("request {k}: unexpected outcome {other:?}"),
        };
    }
    let stats = engine.stats();
    drop(engine);
    let m = session.metrics();
    // Scratch-arena counters are per-thread cache statistics and
    // compute-pool counters/histograms are scheduling statistics
    // (steal/starvation counts are racy by design); both sit outside
    // the invariance contract (as in the serving-metrics invariance
    // test). Everything else must be byte-identical.
    let counters: std::collections::BTreeMap<String, u64> = m
        .counters
        .iter()
        .filter(|(k, _)| !k.contains(".arena.") && !k.contains(".pool."))
        .map(|(k, v)| (k.clone(), *v))
        .collect();
    let histograms: std::collections::BTreeMap<String, _> = m
        .histograms
        .iter()
        .filter(|(k, _)| !k.contains(".pool."))
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    RunFingerprint {
        stats: format!("{stats:?}"),
        counters: serde_json::to_string(&counters).unwrap(),
        gauges: serde_json::to_string(&m.gauges).unwrap(),
        histograms: serde_json::to_string(&histograms).unwrap(),
        quantile_counts: m
            .quantiles
            .iter()
            .map(|(k, v)| (k.clone(), v.count))
            .collect(),
        outcomes,
    }
}

/// Tentpole determinism contract: shed/expired outcomes are a pure
/// function of arrival order and tick budget, so the same overload
/// arrival sequence produces byte-identical `EngineStats` and identical
/// deterministic metric sections at 1, 4, and 8 workers.
#[test]
fn overload_outcome_is_worker_count_invariant() {
    for policy in [ShedPolicy::RejectNew, ShedPolicy::DropOldest] {
        let one = overload_run(1, policy);
        let four = overload_run(4, policy);
        let eight = overload_run(8, policy);
        for (label, other) in [("4", &four), ("8", &eight)] {
            assert_eq!(one.stats, other.stats, "stats differ at {label} workers");
            assert_eq!(
                one.counters, other.counters,
                "counters differ at {label} workers ({policy:?})"
            );
            assert_eq!(one.gauges, other.gauges, "gauges differ at {label} workers");
            assert_eq!(
                one.histograms, other.histograms,
                "histograms differ at {label} workers"
            );
            assert_eq!(
                one.quantile_counts, other.quantile_counts,
                "quantile counts differ at {label} workers"
            );
            assert_eq!(
                one.outcomes, other.outcomes,
                "per-request outcomes differ at {label} workers"
            );
        }
        // The fingerprints must also describe the right story.
        match policy {
            ShedPolicy::RejectNew => {
                assert!(
                    one.counters.contains("\"infer.queue.full\":8"),
                    "{}",
                    one.counters
                );
                assert!(
                    one.counters.contains("\"infer.expired\":4"),
                    "{}",
                    one.counters
                );
                assert!(one.stats.contains("rejected: 8"), "{}", one.stats);
                assert_eq!(one.outcomes[4..], vec!["queue_full"; 8][..]);
            }
            ShedPolicy::DropOldest => {
                assert!(
                    one.counters.contains("\"infer.shed\":8"),
                    "{}",
                    one.counters
                );
                assert!(
                    one.counters.contains("\"infer.expired\":4"),
                    "{}",
                    one.counters
                );
                assert_eq!(one.outcomes[..8], vec!["shed"; 8][..]);
                assert_eq!(one.outcomes[8..], vec!["expired"; 4][..]);
            }
        }
        // Bounded queue: the peak never exceeded capacity, and no batch
        // ever executed (every drained request had already expired).
        assert!(one.stats.contains("queue_peak: 4"), "{}", one.stats);
        assert!(one.stats.contains("batches: 0"), "{}", one.stats);
        assert!(one.stats.contains("wait_us_total: 0"), "{}", one.stats);
    }
}

/// The two shed policies must *disagree* on the same arrival sequence:
/// `RejectNew` serves the head of the queue and refuses the tail at
/// submit time; `DropOldest` sheds the head and serves the tail.
#[test]
fn drop_oldest_and_reject_new_disagree_on_the_same_arrivals() {
    let run = |policy: ShedPolicy| {
        let session = hydronas_telemetry::session();
        let plan = tiny_plan();
        let engine = Engine::start(plan, parked_config(1, 2, policy));
        let results: Vec<_> = (0..5u64).map(|k| engine.submit(input(200 + k))).collect();
        advance_until(&engine, "head of queue served", || {
            engine.stats().completed == 2
        });
        let outcomes: Vec<&'static str> = results
            .into_iter()
            .map(|r| match r {
                Ok(h) => match h.wait() {
                    Ok(_) => "served",
                    Err(InferError::Shed) => "shed",
                    other => panic!("unexpected {other:?}"),
                },
                Err(InferError::QueueFull) => "queue_full",
                Err(e) => panic!("unexpected submit error {e:?}"),
            })
            .collect();
        drop(session);
        outcomes
    };
    let reject = run(ShedPolicy::RejectNew);
    let drop_oldest = run(ShedPolicy::DropOldest);
    assert_eq!(
        reject,
        ["served", "served", "queue_full", "queue_full", "queue_full"]
    );
    assert_eq!(drop_oldest, ["shed", "shed", "shed", "served", "served"]);
    assert_ne!(reject, drop_oldest);
}

/// An expired request is rejected at drain time instead of wasting a
/// batch slot: the surviving request executes in a batch of one.
#[test]
fn expired_requests_do_not_occupy_batch_slots() {
    let _session = hydronas_telemetry::session();
    let plan = tiny_plan();
    let engine = Engine::start(plan, parked_config(1, 8, ShedPolicy::RejectNew));
    let alive = engine
        .submit(InferRequest::new(input(1)).deadline_ticks(1_000_000))
        .unwrap();
    let doomed = engine
        .submit(InferRequest::new(input(2)).deadline_ticks(0))
        .unwrap();
    advance_until(&engine, "one served, one expired", || {
        let s = engine.stats();
        s.completed == 1 && s.expired == 1
    });
    let p = alive.wait().expect("deadline far in the future");
    assert_eq!(
        p.batch_size, 1,
        "expired request must not have occupied a batch slot"
    );
    assert_eq!(doomed.wait().unwrap_err(), InferError::DeadlineExceeded);
    let stats = engine.stats();
    assert_eq!(
        stats.drained, 1,
        "expired requests are not drained-for-wait"
    );
    assert_eq!(stats.batched_samples, 1);
}

/// Satellite regression: rejected submits must consume no request id and
/// emit no orphan enqueue span. The enqueue spans of admitted requests
/// stay dense (`request 1..=N`) across interleaved rejections.
#[test]
fn request_ids_stay_dense_across_rejected_submits() {
    let session = hydronas_telemetry::session();
    let plan = tiny_plan();
    let engine = Engine::start(plan, parked_config(1, 2, ShedPolicy::RejectNew));
    let h1 = engine.submit(input(11)).unwrap();
    let h2 = engine.submit(input(12)).unwrap();
    // Two rejections between admission 2 and admission 3.
    assert_eq!(engine.submit(input(13)).unwrap_err(), InferError::QueueFull);
    assert_eq!(engine.submit(input(14)).unwrap_err(), InferError::QueueFull);
    advance_until(&engine, "first batch served", || {
        engine.stats().completed == 2
    });
    h1.wait().unwrap();
    h2.wait().unwrap();
    let h3 = engine.submit(input(15)).unwrap();
    advance_until(&engine, "third request served", || {
        engine.stats().completed == 3
    });
    h3.wait().unwrap();
    engine.close();
    // A post-close rejection must not consume an id either.
    assert_eq!(engine.submit(input(16)).unwrap_err(), InferError::Closed);
    drop(engine);
    let enqueues: Vec<String> = session
        .spans()
        .into_iter()
        .filter(|s| s.category == "infer.request.enqueue")
        .map(|s| s.name)
        .collect();
    assert_eq!(
        enqueues,
        ["request 1", "request 2", "request 3"],
        "rejected submits consumed ids or emitted orphan spans"
    );
}

/// Satellite regression: queue wait is measured once per request, and
/// that single value feeds the stats counter, the wait quantile, and the
/// client-visible `Prediction::wait_us` — exactly, not approximately.
#[test]
fn queue_wait_is_measured_once_and_all_sinks_agree() {
    let session = hydronas_telemetry::session();
    let plan = tiny_plan();
    let engine = Engine::start(
        plan,
        EngineConfig {
            workers: 1,
            max_batch: 1,
            max_wait_ticks: 0,
            tick_us: 50,
            ..EngineConfig::default()
        },
    );
    let mut waits = Vec::new();
    for k in 0..40u64 {
        waits.push(engine.infer(input(300 + k)).unwrap().wait_us);
    }
    let stats = engine.stats();
    drop(engine);
    assert_eq!(
        stats.wait_us_total,
        waits.iter().sum::<u64>(),
        "stats and client-visible waits disagree"
    );
    assert_eq!(stats.drained, 40);
    // Rebuild the wait histogram from the client-visible values with the
    // same microseconds→milliseconds conversion: if the engine had
    // measured a second time for the quantile sink, any observation
    // straddling a bucket boundary would break this exact equality.
    let mut expected = QuantileHistogram::default();
    for &w in &waits {
        expected.observe(w as f64 / 1e3);
    }
    let m = session.metrics();
    let recorded = m
        .quantiles
        .get("infer.request.wait_wall_ms")
        .expect("wait quantile recorded");
    assert_eq!(recorded, &expected.snapshot());
}

/// A retrying request gives up after `max_attempts` queue-full
/// rejections, and every refused attempt is visible in the stats.
#[test]
fn retry_exhausts_against_a_parked_full_queue() {
    let _session = hydronas_telemetry::session();
    let plan = tiny_plan();
    let engine = Engine::start(plan, parked_config(1, 1, ShedPolicy::RejectNew));
    let _filler = engine.submit(input(1)).unwrap();
    let err = engine
        .infer(InferRequest::new(input(2)).retry(RetryConfig::new(3)))
        .unwrap_err();
    assert_eq!(err, InferError::QueueFull);
    assert_eq!(engine.stats().rejected, 3, "one rejection per attempt");
}

/// A retrying request rides out transient overload: once the parked
/// queue drains, a later attempt is admitted and served.
#[test]
fn retry_succeeds_once_the_queue_drains() {
    let _session = hydronas_telemetry::session();
    let plan = tiny_plan();
    let engine = Arc::new(Engine::start(
        plan,
        parked_config(1, 1, ShedPolicy::RejectNew),
    ));
    let filler = engine.submit(input(1)).unwrap();
    let retry_engine = Arc::clone(&engine);
    let retrier = std::thread::spawn(move || {
        retry_engine
            .infer(InferRequest::new(input(2)).retry(RetryConfig::new(4000).with_backoff(1, 1.0)))
    });
    // Guarantee the retrier observed at least one rejection before the
    // queue is allowed to drain.
    while engine.stats().rejected == 0 {
        std::thread::sleep(Duration::from_micros(200));
    }
    advance_until(&engine, "both requests served", || {
        engine.stats().completed == 2
    });
    let p = retrier.join().unwrap().expect("retry must succeed");
    assert!(!p.logits.is_empty());
    filler.wait().unwrap();
    let stats = engine.stats();
    assert!(stats.rejected >= 1, "{stats:?}");
    assert_eq!(stats.completed, 2);
}

/// Tentpole drain contract, proven deadlock-free under a live
/// close-while-submitting race: every submitted request resolves to a
/// prediction or a structured error, queued leftovers are failed with
/// `Closed`, and the books balance exactly.
#[test]
fn close_and_drain_races_submitters_without_deadlock_or_loss() {
    let _session = hydronas_telemetry::session();
    let plan = tiny_plan();
    let engine = Arc::new(Engine::start(
        plan,
        EngineConfig {
            workers: 2,
            max_batch: 4,
            max_wait_ticks: 1,
            tick_us: 100,
            queue_capacity: 4,
            shed_policy: ShedPolicy::RejectNew,
            manual_clock: false,
        },
    ));
    let submitters: Vec<_> = (0..4)
        .map(|t| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                let mut handles = Vec::new();
                for r in 0..30u64 {
                    match engine.submit(input(1000 + t * 100 + r)) {
                        Ok(h) => handles.push(h),
                        Err(InferError::QueueFull) | Err(InferError::Closed) => {}
                        Err(e) => panic!("unexpected submit error {e:?}"),
                    }
                    if r % 8 == 0 {
                        std::thread::sleep(Duration::from_micros(300));
                    }
                }
                handles
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(2));
    let drain = engine.close_and_drain(5_000);
    let mut served = 0u64;
    let mut failed_closed = 0u64;
    for s in submitters {
        for h in s.join().unwrap() {
            match h.wait() {
                Ok(_) => served += 1,
                Err(InferError::Closed) => failed_closed += 1,
                Err(e) => panic!("unexpected outcome {e:?}"),
            }
        }
    }
    assert!(
        !drain.timed_out,
        "in-flight batches must finish within budget"
    );
    assert_eq!(drain.failed, failed_closed, "drain-failed bookkeeping");
    let stats = engine.stats();
    assert_eq!(stats.completed, served);
    assert_eq!(
        stats.requests,
        served + failed_closed,
        "every admitted request must resolve: {stats:?} vs drain {drain:?}"
    );
    // Post-drain submits are refused outright.
    assert_eq!(engine.submit(input(9)).unwrap_err(), InferError::Closed);
}
