//! Regression tests for the validating [`EngineConfig::builder`]: the
//! degenerate configurations `Engine::start` would previously only catch
//! by panicking (or, for a zero tick, by dividing by zero in the wall
//! clock) must come back as typed [`InferError::InvalidConfig`] values —
//! and the plain struct-literal path must keep working for valid configs.

use hydronas_infer::{
    Engine, EngineConfig, ExecutionPlan, InferError, InferRequest, RetryConfig, ShedPolicy,
};
use hydronas_nn::ResNet;
use hydronas_tensor::{uniform, TensorRng};
use std::sync::Arc;

fn tiny_plan() -> Arc<ExecutionPlan> {
    let mut arch = hydronas_graph::ArchConfig::baseline(5);
    arch.initial_features = 4;
    let mut rng = TensorRng::seed_from_u64(7);
    let model = ResNet::new(&arch, &mut rng);
    Arc::new(ExecutionPlan::builder(&model).build().unwrap())
}

#[test]
fn builder_rejects_every_degenerate_knob_with_a_typed_error() {
    for (field, builder) in [
        ("workers", EngineConfig::builder().workers(0)),
        ("max_batch", EngineConfig::builder().max_batch(0)),
        ("queue_capacity", EngineConfig::builder().queue_capacity(0)),
        ("tick_us", EngineConfig::builder().tick_us(0)),
    ] {
        match builder.build() {
            Err(InferError::InvalidConfig { field: got }) => {
                assert_eq!(got, field, "wrong field named");
            }
            other => panic!("{field} = 0 must be rejected, got {other:?}"),
        }
    }
    // The error is a std::error::Error with a useful message.
    let err = EngineConfig::builder().tick_us(0).build().unwrap_err();
    assert!(err.to_string().contains("tick_us"), "{err}");
}

#[test]
fn builder_accepts_valid_configs_and_the_engine_serves_them() {
    let config = EngineConfig::builder()
        .workers(1)
        .max_batch(2)
        .max_wait_ticks(0) // zero window is valid: drain immediately
        .tick_us(50)
        .queue_capacity(16)
        .shed_policy(ShedPolicy::DropOldest)
        .build()
        .expect("a fully-specified valid config");
    assert_eq!(config.workers, 1);
    assert_eq!(config.shed_policy, ShedPolicy::DropOldest);
    let engine = Engine::start(tiny_plan(), config);
    let mut rng = TensorRng::seed_from_u64(1);
    let x = uniform(&[5, 16, 16], -1.0, 1.0, &mut rng);
    let p = engine.infer(x).unwrap();
    assert_eq!(p.logits.len(), 2);
}

#[test]
fn struct_literal_configs_still_work_for_valid_values() {
    // The pre-builder construction path is not deprecated for valid
    // configs; existing callers must keep compiling and serving.
    let config = EngineConfig {
        workers: 1,
        max_batch: 1,
        max_wait_ticks: 0,
        tick_us: 50,
        ..EngineConfig::default()
    };
    let engine = Engine::start(tiny_plan(), config);
    let mut rng = TensorRng::seed_from_u64(2);
    let x = uniform(&[5, 16, 16], -1.0, 1.0, &mut rng);
    assert_eq!(engine.infer(x).unwrap().batch_size, 1);
}

#[test]
fn deprecated_submit_shims_still_delegate_correctly() {
    // The collapsed entry points keep working through their shims until
    // external callers migrate to `submit(InferRequest)`.
    #![allow(deprecated)]
    let engine = Engine::start(
        tiny_plan(),
        EngineConfig::builder()
            .workers(1)
            .tick_us(50)
            .build()
            .unwrap(),
    );
    let mut rng = TensorRng::seed_from_u64(3);
    let a = uniform(&[5, 16, 16], -1.0, 1.0, &mut rng);
    let b = uniform(&[5, 16, 16], -1.0, 1.0, &mut rng);
    let via_shim = engine
        .submit_with_deadline(a.clone(), 1_000_000)
        .unwrap()
        .wait()
        .unwrap();
    let via_typed = engine
        .submit(InferRequest::new(a).deadline_ticks(1_000_000))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(via_shim.logits, via_typed.logits);
    let retried = engine
        .infer_with_retry(b, &RetryConfig::new(2))
        .expect("shim must serve an uncontended queue");
    assert_eq!(retried.logits.len(), 2);
}
