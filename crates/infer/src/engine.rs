//! Multi-threaded batching front-end over one shared [`ExecutionPlan`].
//!
//! ## Batching policy
//!
//! Requests land in a single mutex-guarded queue. A worker that finds the
//! queue non-empty starts a *collection window*: it keeps waiting in
//! tick-sized slices (`tick_us` each) until either `max_batch` requests are
//! pending or `max_wait_ticks` ticks have elapsed, then drains up to
//! `max_batch` requests and executes them as one stacked forward pass. The
//! deadline counts ticks rather than wall-clock timestamps — a simulated
//! clock in the spirit of the latency simulator — so the policy is
//! deterministic under test and never blocks an almost-full batch on a
//! slow clock.
//!
//! ## Admission policy (overload protection)
//!
//! The queue is **bounded** by [`EngineConfig::queue_capacity`]. A submit
//! that finds it full is resolved by the configured [`ShedPolicy`]:
//! either the *new* request is refused synchronously
//! ([`InferError::QueueFull`]) or the *oldest* queued request is shed
//! ([`InferError::Shed`] delivered through its handle) to make room.
//! Either way the queue never grows past `queue_capacity`, so queue wait
//! — and therefore completed-request tail latency — is bounded by
//! construction even at offered loads far above capacity.
//!
//! ## Deadlines
//!
//! [`InferRequest::deadline_ticks`] stamps a request with a budget in
//! ticks of the same clock the collection window counts. Expiry is
//! checked once, at drain time: an expired request is failed with
//! [`InferError::DeadlineExceeded`] *before* batch assembly, so it never
//! wastes a batch slot on an answer its client has already given up on.
//!
//! ## The tick clock
//!
//! In the default wall-clock mode one tick is `tick_us` microseconds of
//! real time. With [`EngineConfig::manual_clock`] the clock only moves
//! when [`Engine::advance_ticks`] is called, which makes shed/expiry
//! outcomes a pure function of arrival order and tick budget — the mode
//! the determinism tests and the `--overload` bench harness rely on.
//!
//! The plan is shared via `Arc`: workers hold no model state of their own,
//! so memory stays flat in the worker count (the whole point of the
//! read-only plan — contrast `ResNet::forward`, which needs `&mut self`).

use crate::plan::ExecutionPlan;
use hydronas_tensor::Tensor;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What happens to a `submit` that finds the queue at capacity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Refuse the new request: `submit` returns [`InferError::QueueFull`]
    /// and the queue is untouched. Favors requests already queued (their
    /// deadlines are closer) and gives the client an immediate,
    /// retryable signal — pair with [`InferRequest::retry`].
    #[default]
    RejectNew,
    /// Admit the new request and shed the *oldest* queued one, whose
    /// handle resolves to [`InferError::Shed`]. Favors fresh requests —
    /// the right call when stale answers are worthless anyway.
    DropOldest,
}

/// Batching and threading knobs for [`Engine::start`].
///
/// Construct via [`EngineConfig::builder`] to get validation with typed
/// errors ([`InferError::InvalidConfig`]); the struct-literal path stays
/// available but degenerate values (`workers == 0`, `max_batch == 0`,
/// `queue_capacity == 0`, `tick_us == 0`) panic at [`Engine::start`].
///
/// Defaults: 2 workers, batches of up to 8, a 2-tick collection window,
/// 200 µs ticks, a queue bounded at 1024 requests,
/// [`ShedPolicy::RejectNew`], wall clock.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Worker threads executing batches.
    pub workers: usize,
    /// Largest batch one worker will stack.
    pub max_batch: usize,
    /// Collection-window length, in ticks of `tick_us`.
    pub max_wait_ticks: u64,
    /// Duration of one simulated-clock tick, in microseconds.
    pub tick_us: u64,
    /// Most requests that may wait in the queue at once; a submit
    /// finding the queue full is resolved by `shed_policy`.
    pub queue_capacity: usize,
    /// How a full queue sheds load.
    pub shed_policy: ShedPolicy,
    /// When true the tick clock advances only via
    /// [`Engine::advance_ticks`] (deterministic test/bench mode); when
    /// false (default) one tick elapses every `tick_us` microseconds of
    /// wall time.
    pub manual_clock: bool,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            workers: 2,
            max_batch: 8,
            max_wait_ticks: 2,
            tick_us: 200,
            queue_capacity: 1024,
            shed_policy: ShedPolicy::RejectNew,
            manual_clock: false,
        }
    }
}

impl EngineConfig {
    /// Starts a validating builder over the default configuration.
    ///
    /// [`EngineConfigBuilder::build`] rejects values that would make the
    /// engine hang or panic at spawn — zero workers, a zero-size batch or
    /// queue, a zero-length tick — with [`InferError::InvalidConfig`]
    /// naming the offending knob, instead of asserting inside
    /// [`Engine::start`].
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder {
            config: EngineConfig::default(),
        }
    }
}

/// Validating builder for [`EngineConfig`]; see [`EngineConfig::builder`].
///
/// Every setter takes and returns the builder by value, so a config reads
/// as one chain:
///
/// ```
/// use hydronas_infer::{EngineConfig, ShedPolicy};
///
/// let config = EngineConfig::builder()
///     .workers(4)
///     .max_batch(16)
///     .shed_policy(ShedPolicy::DropOldest)
///     .build()
///     .unwrap();
/// assert_eq!(config.workers, 4);
/// assert!(EngineConfig::builder().workers(0).build().is_err());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct EngineConfigBuilder {
    config: EngineConfig,
}

impl EngineConfigBuilder {
    /// Worker threads executing batches (default 2; zero is rejected).
    pub fn workers(mut self, workers: usize) -> EngineConfigBuilder {
        self.config.workers = workers;
        self
    }

    /// Largest batch one worker will stack (default 8; zero is rejected).
    pub fn max_batch(mut self, max_batch: usize) -> EngineConfigBuilder {
        self.config.max_batch = max_batch;
        self
    }

    /// Collection-window length in ticks (default 2; zero means workers
    /// drain whatever is queued without waiting — valid).
    pub fn max_wait_ticks(mut self, ticks: u64) -> EngineConfigBuilder {
        self.config.max_wait_ticks = ticks;
        self
    }

    /// Microseconds per tick (default 200; zero is rejected — the wall
    /// clock divides by it).
    pub fn tick_us(mut self, tick_us: u64) -> EngineConfigBuilder {
        self.config.tick_us = tick_us;
        self
    }

    /// Bounded queue capacity (default 1024; zero is rejected — nothing
    /// could ever be admitted).
    pub fn queue_capacity(mut self, capacity: usize) -> EngineConfigBuilder {
        self.config.queue_capacity = capacity;
        self
    }

    /// How a full queue sheds load (default [`ShedPolicy::RejectNew`]).
    pub fn shed_policy(mut self, policy: ShedPolicy) -> EngineConfigBuilder {
        self.config.shed_policy = policy;
        self
    }

    /// Manual tick clock for deterministic tests (default off).
    pub fn manual_clock(mut self, manual: bool) -> EngineConfigBuilder {
        self.config.manual_clock = manual;
        self
    }

    /// Validates and returns the configuration, or
    /// [`InferError::InvalidConfig`] naming the first degenerate knob.
    pub fn build(self) -> Result<EngineConfig, InferError> {
        let c = &self.config;
        for (field, degenerate) in [
            ("workers", c.workers == 0),
            ("max_batch", c.max_batch == 0),
            ("queue_capacity", c.queue_capacity == 0),
            ("tick_us", c.tick_us == 0),
        ] {
            if degenerate {
                return Err(InferError::InvalidConfig { field });
            }
        }
        Ok(self.config)
    }
}

/// Why a request could not be served.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InferError {
    /// The engine is shutting down (or a worker died before responding).
    Closed,
    /// The queue was at [`EngineConfig::queue_capacity`] under
    /// [`ShedPolicy::RejectNew`]; the request was never admitted.
    QueueFull,
    /// This request was the oldest in a full queue under
    /// [`ShedPolicy::DropOldest`] when a newer request arrived.
    Shed,
    /// The request's tick budget lapsed before a worker drained it.
    DeadlineExceeded,
    /// Input was not `[C, H, W]` with the plan's channel count.
    InputShape {
        expected_channels: usize,
        dims: Vec<usize>,
    },
    /// A degenerate [`EngineConfig`] knob was rejected by
    /// [`EngineConfigBuilder::build`]; `field` names the offender.
    InvalidConfig { field: &'static str },
    /// A quantized plan could not be built: missing or uncalibrated
    /// [`QuantizationScheme`](crate::QuantizationScheme), invalid
    /// calibration parameters, or a calibration batch whose shape does not
    /// match the model (see [`PlanBuilder::build`](crate::PlanBuilder::build)).
    InvalidQuantization { reason: String },
}

impl std::fmt::Display for InferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InferError::Closed => write!(f, "inference engine is closed"),
            InferError::QueueFull => write!(f, "inference queue is at capacity"),
            InferError::Shed => write!(f, "request shed from a full queue to admit newer work"),
            InferError::DeadlineExceeded => {
                write!(f, "request deadline lapsed before a worker drained it")
            }
            InferError::InputShape {
                expected_channels,
                dims,
            } => write!(
                f,
                "bad input shape {dims:?}: expected [C={expected_channels}, H, W]"
            ),
            InferError::InvalidConfig { field } => {
                write!(f, "invalid engine config: {field} must be positive")
            }
            InferError::InvalidQuantization { reason } => {
                write!(f, "invalid quantization: {reason}")
            }
        }
    }
}

impl std::error::Error for InferError {}

/// Client-side retry policy attached to a request via
/// [`InferRequest::retry`]: bounded attempts with exponential backoff
/// over [`InferError::QueueFull`].
///
/// The same shape as the sweep engine's `RetryPolicy`, with backoff
/// measured in engine ticks instead of simulated seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryConfig {
    /// Total attempts (so `1` disables retries).
    pub max_attempts: usize,
    /// Ticks slept before the first retry; `0` retries immediately.
    pub backoff_base_ticks: u64,
    /// Multiplier applied to the backoff for each further retry.
    pub backoff_mult: f64,
}

impl RetryConfig {
    /// A policy with `max_attempts` total attempts and no backoff.
    pub fn new(max_attempts: usize) -> RetryConfig {
        RetryConfig {
            max_attempts: max_attempts.max(1),
            backoff_base_ticks: 0,
            backoff_mult: 2.0,
        }
    }

    /// Adds exponential backoff: retry `r` (1-based) waits
    /// `base_ticks * mult^(r-1)` ticks of `tick_us` wall microseconds.
    pub fn with_backoff(mut self, base_ticks: u64, mult: f64) -> RetryConfig {
        self.backoff_base_ticks = base_ticks;
        self.backoff_mult = mult.max(1.0);
        self
    }

    /// Ticks of backoff before attempt `attempt` (2-based; attempt 1
    /// never waits).
    pub fn backoff_ticks(&self, attempt: usize) -> u64 {
        if attempt <= 1 || self.backoff_base_ticks == 0 {
            return 0;
        }
        let scaled = self.backoff_base_ticks as f64 * self.backoff_mult.powi(attempt as i32 - 2);
        scaled.min(u64::MAX as f64) as u64
    }
}

impl Default for RetryConfig {
    /// Three attempts with a one-tick doubling backoff.
    fn default() -> RetryConfig {
        RetryConfig::new(3).with_backoff(1, 2.0)
    }
}

/// One typed inference request: the input tensor plus every per-request
/// policy, submitted via [`Engine::submit`].
///
/// This is the single entry point that replaced the accreted
/// `submit` / `submit_with_deadline` / `infer_with_retry` trio: a bare
/// [`Tensor`] converts into a plain request (`engine.submit(tensor)` and
/// `engine.infer(tensor)` keep working unchanged), and deadlines or
/// retries chain on as builder calls:
///
/// ```no_run
/// # use hydronas_infer::{Engine, EngineConfig, InferRequest, RetryConfig};
/// # use hydronas_tensor::Tensor;
/// # fn demo(engine: &Engine, x: Tensor) {
/// let handle = engine
///     .submit(InferRequest::new(x).deadline_ticks(50).retry(RetryConfig::new(3)))
///     .unwrap();
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct InferRequest {
    input: Tensor,
    deadline_ticks: Option<u64>,
    retry: Option<RetryConfig>,
}

impl InferRequest {
    /// A request for one `[C, H, W]` sample with no deadline and no
    /// retries.
    pub fn new(input: Tensor) -> InferRequest {
        InferRequest {
            input,
            deadline_ticks: None,
            retry: None,
        }
    }

    /// Expires the request after `ticks` engine ticks: if no worker
    /// drains it within the budget it resolves to
    /// [`InferError::DeadlineExceeded`] instead of occupying a batch
    /// slot. A budget of `0` expires as soon as the clock moves at all.
    pub fn deadline_ticks(mut self, ticks: u64) -> InferRequest {
        self.deadline_ticks = Some(ticks);
        self
    }

    /// Retries [`InferError::QueueFull`] rejections inside
    /// [`Engine::submit`] with the given bounded-backoff policy (each
    /// backoff tick sleeps `tick_us` wall microseconds). Admission
    /// rejection is synchronous, so the retry loop lives in `submit`
    /// itself: the handle you get back is for an admitted request.
    pub fn retry(mut self, retry: RetryConfig) -> InferRequest {
        self.retry = Some(retry);
        self
    }
}

impl From<Tensor> for InferRequest {
    fn from(input: Tensor) -> InferRequest {
        InferRequest::new(input)
    }
}

/// One classification result.
#[derive(Clone, Debug, PartialEq)]
pub struct Prediction {
    /// Raw logits, one per class.
    pub logits: Vec<f32>,
    /// Argmax class (first index on ties, matching `argmax_rows`).
    pub class: usize,
    /// Size of the batch this request was served in.
    pub batch_size: usize,
    /// Queue wait (enqueue → batch drain) in wall microseconds — the
    /// *same* single measurement fed to [`EngineStats::wait_us_total`]
    /// and the `infer.request.wait_wall_ms` quantile.
    pub wait_us: u64,
}

/// A pending request: wait on it to get the [`Prediction`].
#[derive(Debug)]
pub struct PredictionHandle {
    rx: mpsc::Receiver<Result<Prediction, InferError>>,
}

impl PredictionHandle {
    /// Blocks until this request resolves: a [`Prediction`] once its
    /// batch has executed, or a structured error if it was shed
    /// ([`InferError::Shed`]), expired ([`InferError::DeadlineExceeded`]),
    /// or failed by a drain ([`InferError::Closed`]).
    pub fn wait(self) -> Result<Prediction, InferError> {
        self.rx.recv().map_err(|_| InferError::Closed)?
    }
}

/// Aggregate serving statistics since engine start.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Requests admitted to the queue (excludes `rejected`).
    pub requests: u64,
    /// Submissions refused with [`InferError::QueueFull`]
    /// ([`ShedPolicy::RejectNew`] at capacity).
    pub rejected: u64,
    /// Admitted requests later shed from a full queue
    /// ([`ShedPolicy::DropOldest`]).
    pub shed: u64,
    /// Admitted requests whose deadline lapsed before drain.
    pub expired: u64,
    pub batches: u64,
    /// Sum of executed batch sizes (equals `requests` once drained, in
    /// the absence of sheds and expiries).
    pub batched_samples: u64,
    /// Largest batch any worker executed.
    pub max_batch_observed: u64,
    /// Requests whose prediction has been computed (completion is
    /// counted before the client wakes).
    pub completed: u64,
    /// Requests drained into a batch — the accounting point (and
    /// denominator) paired with `wait_us_total`.
    pub drained: u64,
    /// Deepest the pending queue has ever been (never exceeds
    /// [`EngineConfig::queue_capacity`]).
    pub queue_peak: u64,
    /// Total wall-clock microseconds requests spent queued (enqueue →
    /// batch drain), summed over all drained requests.
    pub wait_us_total: u64,
    /// Total wall-clock microseconds workers spent executing batches.
    pub exec_us_total: u64,
}

impl EngineStats {
    /// Mean executed batch size.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_samples as f64 / self.batches as f64
        }
    }

    /// Mean per-request queue wait (enqueue → drain), milliseconds.
    ///
    /// Both the numerator (`wait_us_total`) and the denominator
    /// (`drained`) accumulate at drain time, so a mid-flight snapshot is
    /// internally consistent — dividing by `completed` (which lags until
    /// the batch finishes executing) used to inflate this number.
    pub fn mean_wait_ms(&self) -> f64 {
        if self.drained == 0 {
            0.0
        } else {
            self.wait_us_total as f64 / 1e3 / self.drained as f64
        }
    }

    /// Mean per-batch execution time, milliseconds.
    pub fn mean_exec_ms(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.exec_us_total as f64 / 1e3 / self.batches as f64
        }
    }
}

/// What [`Engine::close_and_drain`] observed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DrainStats {
    /// Requests completed over the engine's lifetime, as of the drain
    /// returning.
    pub completed: u64,
    /// Still-queued requests failed with [`InferError::Closed`].
    pub failed: u64,
    /// True when an in-flight batch was still executing after the tick
    /// budget lapsed (its clients are still answered once it finishes;
    /// the drain just stopped waiting for it).
    pub timed_out: bool,
}

struct Request {
    /// Dense per-engine request number (1-based admission order).
    id: u64,
    input: Tensor,
    tx: mpsc::Sender<Result<Prediction, InferError>>,
    /// When `submit` enqueued this request (for wait-time accounting).
    enqueued: Instant,
    /// Absolute tick at which this request expires, if a deadline was
    /// set; checked once at drain time.
    deadline: Option<u64>,
    /// Whether a telemetry session was active at submit time. Latched
    /// once and used at *both* ends of every gauge (enqueue/resolve), so
    /// a session starting or ending mid-request can never skew
    /// `infer.inflight` or `infer.queue.depth` permanently.
    telemetry: bool,
    /// Telemetry flow id linking this request's spans across threads;
    /// `None` when no session was active at submit time.
    flow: Option<u64>,
}

struct Queue {
    pending: VecDeque<Request>,
    open: bool,
    /// Batches currently drained-but-executing; `close_and_drain` waits
    /// on `done_cv` until this reaches zero.
    executing: usize,
}

struct Shared {
    plan: Arc<ExecutionPlan>,
    queue: Mutex<Queue>,
    cv: Condvar,
    /// Signaled each time a worker finishes a batch (for drain waits).
    done_cv: Condvar,
    /// Engine start, the epoch of the wall tick clock.
    started: Instant,
    /// The manual tick clock ([`EngineConfig::manual_clock`]).
    ticks: AtomicU64,
    next_request: AtomicU64,
    requests: AtomicU64,
    rejected: AtomicU64,
    shed: AtomicU64,
    expired: AtomicU64,
    batches: AtomicU64,
    batched_samples: AtomicU64,
    max_batch_observed: AtomicU64,
    completed: AtomicU64,
    drained: AtomicU64,
    queue_peak: AtomicU64,
    wait_us: AtomicU64,
    exec_us: AtomicU64,
}

/// The engine's tick clock: wall-derived by default, manual under
/// [`EngineConfig::manual_clock`].
fn now_ticks(shared: &Shared, config: &EngineConfig) -> u64 {
    if config.manual_clock {
        shared.ticks.load(Ordering::Relaxed)
    } else {
        shared.started.elapsed().as_micros() as u64 / config.tick_us
    }
}

/// The serving front-end: submit `[C, H, W]` tensors, receive logits.
pub struct Engine {
    shared: Arc<Shared>,
    config: EngineConfig,
    workers: Vec<JoinHandle<()>>,
}

impl Engine {
    /// Spawns `config.workers` threads over a shared compiled plan.
    pub fn start(plan: Arc<ExecutionPlan>, config: EngineConfig) -> Engine {
        assert!(config.workers > 0, "need at least one worker");
        assert!(config.max_batch > 0, "max_batch must be positive");
        assert!(config.queue_capacity > 0, "queue_capacity must be positive");
        assert!(config.tick_us > 0, "tick_us must be positive");
        let shared = Arc::new(Shared {
            plan,
            queue: Mutex::new(Queue {
                pending: VecDeque::new(),
                open: true,
                executing: 0,
            }),
            cv: Condvar::new(),
            done_cv: Condvar::new(),
            started: Instant::now(),
            ticks: AtomicU64::new(0),
            next_request: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_samples: AtomicU64::new(0),
            max_batch_observed: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            drained: AtomicU64::new(0),
            queue_peak: AtomicU64::new(0),
            wait_us: AtomicU64::new(0),
            exec_us: AtomicU64::new(0),
        });
        let workers = (0..config.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, &config))
            })
            .collect();
        Engine {
            shared,
            config,
            workers,
        }
    }

    /// The plan this engine serves.
    pub fn plan(&self) -> &ExecutionPlan {
        &self.shared.plan
    }

    /// The batching configuration in force.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Enqueues one typed request; returns a handle to wait on.
    ///
    /// Accepts anything convertible into an [`InferRequest`] — a bare
    /// `[C, H, W]` [`Tensor`] submits with no deadline or retry, and
    /// [`InferRequest::new`] chains `.deadline_ticks(n)` / `.retry(cfg)`
    /// for the per-request policies. With a retry policy,
    /// [`InferError::QueueFull`] rejections are retried here (bounded
    /// attempts, exponential backoff in wall-clock ticks) before the
    /// final error is surfaced; a returned handle is always for an
    /// admitted request.
    pub fn submit(&self, request: impl Into<InferRequest>) -> Result<PredictionHandle, InferError> {
        let InferRequest {
            input,
            deadline_ticks,
            retry,
        } = request.into();
        let Some(retry) = retry else {
            return self.submit_inner(input, deadline_ticks);
        };
        let mut attempt = 1;
        loop {
            match self.submit_inner(input.clone(), deadline_ticks) {
                Err(InferError::QueueFull) if attempt < retry.max_attempts => {
                    attempt += 1;
                    if hydronas_telemetry::enabled() {
                        hydronas_telemetry::add("infer.retry", 1);
                    }
                    let backoff = retry.backoff_ticks(attempt);
                    if backoff > 0 {
                        std::thread::sleep(Duration::from_micros(
                            backoff.saturating_mul(self.config.tick_us),
                        ));
                    }
                }
                other => return other,
            }
        }
    }

    /// Enqueues one sample with a deadline of `ticks` engine ticks.
    #[deprecated(
        since = "0.10.0",
        note = "use Engine::submit(InferRequest::new(input).deadline_ticks(ticks))"
    )]
    pub fn submit_with_deadline(
        &self,
        input: Tensor,
        ticks: u64,
    ) -> Result<PredictionHandle, InferError> {
        self.submit_inner(input, Some(ticks))
    }

    fn submit_inner(
        &self,
        input: Tensor,
        deadline_ticks: Option<u64>,
    ) -> Result<PredictionHandle, InferError> {
        let expected = self.shared.plan.arch().in_channels;
        if input.shape().ndim() != 3 || input.dims()[0] != expected {
            return Err(InferError::InputShape {
                expected_channels: expected,
                dims: input.dims().to_vec(),
            });
        }
        let (tx, rx) = mpsc::channel();
        let telemetry = hydronas_telemetry::enabled();
        {
            let mut q = self.shared.queue.lock().unwrap();
            // Admission is decided *before* a request id is consumed or
            // an enqueue span emitted, so rejected submits leave no gap
            // in the dense 1-based id sequence and no orphan span.
            if !q.open {
                return Err(InferError::Closed);
            }
            if q.pending.len() >= self.config.queue_capacity {
                if telemetry {
                    hydronas_telemetry::add("infer.queue.full", 1);
                }
                match self.config.shed_policy {
                    ShedPolicy::RejectNew => {
                        self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                        return Err(InferError::QueueFull);
                    }
                    ShedPolicy::DropOldest => {
                        let victim = q.pending.pop_front().expect("capacity is positive");
                        shed_request(&self.shared, victim);
                    }
                }
            }
            let id = self.shared.next_request.fetch_add(1, Ordering::Relaxed) + 1;
            let flow = if telemetry {
                Some(hydronas_telemetry::next_flow_id())
            } else {
                None
            };
            // The enqueue span lives on the client thread; the flow id
            // links it to the batch/complete spans on the worker thread.
            let mut sp = hydronas_telemetry::span(
                "infer.request.enqueue",
                &if telemetry {
                    format!("request {id}")
                } else {
                    String::new()
                },
            );
            if let Some(flow) = flow {
                sp.flow(flow);
                sp.attr("request", id);
            }
            let deadline = deadline_ticks.map(|t| now_ticks(&self.shared, &self.config) + t);
            q.pending.push_back(Request {
                id,
                input,
                tx,
                enqueued: Instant::now(),
                deadline,
                telemetry,
                flow,
            });
            self.shared
                .queue_peak
                .fetch_max(q.pending.len() as u64, Ordering::Relaxed);
        }
        self.shared.requests.fetch_add(1, Ordering::Relaxed);
        if telemetry {
            hydronas_telemetry::add("infer.requests", 1);
            hydronas_telemetry::gauge_add("infer.queue.depth", 1);
            hydronas_telemetry::gauge_add("infer.inflight", 1);
        }
        self.shared.cv.notify_one();
        Ok(PredictionHandle { rx })
    }

    /// Submits and blocks for the result — the single-stream client path.
    /// Accepts the same typed requests as [`Engine::submit`].
    pub fn infer(&self, request: impl Into<InferRequest>) -> Result<Prediction, InferError> {
        self.submit(request)?.wait()
    }

    /// Submits and blocks, retrying [`InferError::QueueFull`] rejections.
    #[deprecated(
        since = "0.10.0",
        note = "use Engine::infer(InferRequest::new(input).retry(retry))"
    )]
    pub fn infer_with_retry(
        &self,
        input: Tensor,
        retry: &RetryConfig,
    ) -> Result<Prediction, InferError> {
        self.infer(InferRequest::new(input).retry(*retry))
    }

    /// Statistics snapshot (monotonic counters, relaxed reads).
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            requests: self.shared.requests.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            shed: self.shared.shed.load(Ordering::Relaxed),
            expired: self.shared.expired.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
            batched_samples: self.shared.batched_samples.load(Ordering::Relaxed),
            max_batch_observed: self.shared.max_batch_observed.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            drained: self.shared.drained.load(Ordering::Relaxed),
            queue_peak: self.shared.queue_peak.load(Ordering::Relaxed),
            wait_us_total: self.shared.wait_us.load(Ordering::Relaxed),
            exec_us_total: self.shared.exec_us.load(Ordering::Relaxed),
        }
    }

    /// The current tick of the engine clock.
    pub fn ticks(&self) -> u64 {
        now_ticks(&self.shared, &self.config)
    }

    /// Advances the manual clock by `n` ticks and wakes every worker so
    /// collection windows and deadlines observe the new time.
    ///
    /// # Panics
    /// Panics unless the engine was started with
    /// [`EngineConfig::manual_clock`].
    pub fn advance_ticks(&self, n: u64) {
        assert!(
            self.config.manual_clock,
            "advance_ticks requires EngineConfig::manual_clock"
        );
        self.shared.ticks.fetch_add(n, Ordering::Relaxed);
        self.shared.cv.notify_all();
    }

    /// Stops accepting new requests; workers drain the queue then exit.
    pub fn close(&self) {
        self.shared.queue.lock().unwrap().open = false;
        self.shared.cv.notify_all();
    }

    /// Graceful bounded shutdown: stops admission, fails every
    /// still-queued request with [`InferError::Closed`], and waits up to
    /// `max_ticks` ticks of wall time (`max_ticks * tick_us`
    /// microseconds) for in-flight batches to finish executing.
    ///
    /// Unlike [`Engine::close`] — which lets workers serve whatever is
    /// queued, however long that takes — this bounds shutdown latency:
    /// queued work is failed immediately and only already-drained batches
    /// are awaited. Every submitted request is guaranteed to resolve
    /// (prediction or structured error); none are left stuck.
    pub fn close_and_drain(&self, max_ticks: u64) -> DrainStats {
        let leftovers: Vec<Request> = {
            let mut q = self.shared.queue.lock().unwrap();
            q.open = false;
            q.pending.drain(..).collect()
        };
        self.shared.cv.notify_all();
        let failed = leftovers.len() as u64;
        for request in leftovers {
            if request.telemetry {
                hydronas_telemetry::add("infer.drain.failed", 1);
                hydronas_telemetry::gauge_add("infer.queue.depth", -1);
                hydronas_telemetry::gauge_add("infer.inflight", -1);
            }
            let _ = request.tx.send(Err(InferError::Closed));
        }
        let deadline =
            Instant::now() + Duration::from_micros(max_ticks.saturating_mul(self.config.tick_us));
        let mut q = self.shared.queue.lock().unwrap();
        let mut timed_out = false;
        while q.executing > 0 {
            let now = Instant::now();
            if now >= deadline {
                timed_out = true;
                break;
            }
            let (guard, _) = self.shared.done_cv.wait_timeout(q, deadline - now).unwrap();
            q = guard;
        }
        drop(q);
        DrainStats {
            completed: self.shared.completed.load(Ordering::Relaxed),
            failed,
            timed_out,
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Resolves a [`ShedPolicy::DropOldest`] victim: counters, quantile, and
/// gauge release under its latched telemetry decision, then the
/// structured error. Called with the queue lock held (the victim is
/// already out of the queue).
fn shed_request(shared: &Shared, victim: Request) {
    shared.shed.fetch_add(1, Ordering::Relaxed);
    if victim.telemetry {
        {
            let mut sp =
                hydronas_telemetry::span("infer.request.shed", &format!("request {}", victim.id));
            if let Some(flow) = victim.flow {
                sp.flow(flow);
            }
        }
        hydronas_telemetry::add("infer.shed", 1);
        hydronas_telemetry::record_quantile(
            "infer.request.shed_wall_ms",
            victim.enqueued.elapsed().as_micros() as f64 / 1e3,
        );
        hydronas_telemetry::gauge_add("infer.queue.depth", -1);
        hydronas_telemetry::gauge_add("infer.inflight", -1);
    }
    let _ = victim.tx.send(Err(InferError::Shed));
}

/// Resolves a drained request whose deadline has lapsed.
fn expire_request(shared: &Shared, request: Request) {
    shared.expired.fetch_add(1, Ordering::Relaxed);
    if request.telemetry {
        {
            let mut sp = hydronas_telemetry::span(
                "infer.request.expired",
                &format!("request {}", request.id),
            );
            if let Some(flow) = request.flow {
                sp.flow(flow);
            }
        }
        hydronas_telemetry::add("infer.expired", 1);
        hydronas_telemetry::record_quantile(
            "infer.request.expired_wall_ms",
            request.enqueued.elapsed().as_micros() as f64 / 1e3,
        );
        hydronas_telemetry::gauge_add("infer.inflight", -1);
    }
    let _ = request.tx.send(Err(InferError::DeadlineExceeded));
}

fn worker_loop(shared: &Shared, config: &EngineConfig) {
    loop {
        let (batch, collect_us) = {
            let mut q = shared.queue.lock().unwrap();
            // Sleep until there is work or the engine closes.
            while q.pending.is_empty() && q.open {
                q = shared.cv.wait(q).unwrap();
            }
            if q.pending.is_empty() {
                return; // closed and drained
            }
            // Collection window: give co-arriving requests `max_wait_ticks`
            // ticks to fill the batch. In wall-clock mode only an elapsed
            // timeout advances the window; in manual mode only
            // `advance_ticks` does. Wakeups from new arrivals re-check for
            // a full batch for free either way.
            let window_start = Instant::now();
            let window_start_tick = now_ticks(shared, config);
            let mut elapsed = 0u64;
            while q.pending.len() < config.max_batch && q.open && elapsed < config.max_wait_ticks {
                let (guard, timeout) = shared
                    .cv
                    .wait_timeout(q, Duration::from_micros(config.tick_us))
                    .unwrap();
                q = guard;
                if config.manual_clock {
                    elapsed = now_ticks(shared, config).saturating_sub(window_start_tick);
                } else if timeout.timed_out() {
                    elapsed += 1;
                }
            }
            let take = q.pending.len().min(config.max_batch);
            if take == 0 {
                // Another worker drained the queue during our collection
                // window — go back to sleep instead of executing an empty
                // batch.
                continue;
            }
            let batch = q.pending.drain(..take).collect::<Vec<Request>>();
            q.executing += 1;
            (batch, window_start.elapsed().as_micros() as u64)
        };
        // Deadline triage at drain time: expired requests are rejected
        // here, before batch assembly, so they never waste a batch slot.
        let now_tick = now_ticks(shared, config);
        let mut live = Vec::with_capacity(batch.len());
        for request in batch {
            if request.telemetry {
                hydronas_telemetry::gauge_add("infer.queue.depth", -1);
            }
            if request.deadline.is_some_and(|d| now_tick > d) {
                expire_request(shared, request);
            } else {
                live.push(request);
            }
        }
        if hydronas_telemetry::enabled() {
            hydronas_telemetry::record_quantile(
                "infer.batch.collect_wall_ms",
                collect_us as f64 / 1e3,
            );
        }
        // Queue-wait accounting at drain time: the wait phase ends here,
        // before execution begins. Each request's wait is measured ONCE
        // and that one value feeds the stats counter, the wait quantile,
        // and the client-visible `Prediction::wait_us` — and the paired
        // `drained` denominator advances at the same point, so a
        // mid-flight `stats()` snapshot stays internally consistent.
        let mut waits = Vec::with_capacity(live.len());
        let mut wait_us_sum = 0u64;
        for request in &live {
            let wait_us = request.enqueued.elapsed().as_micros() as u64;
            wait_us_sum += wait_us;
            if request.telemetry {
                hydronas_telemetry::record_quantile(
                    "infer.request.wait_wall_ms",
                    wait_us as f64 / 1e3,
                );
            }
            waits.push(wait_us);
        }
        shared
            .drained
            .fetch_add(live.len() as u64, Ordering::Relaxed);
        shared.wait_us.fetch_add(wait_us_sum, Ordering::Relaxed);
        if !live.is_empty() {
            execute_batch(shared, config, live, &waits);
        }
        {
            let mut q = shared.queue.lock().unwrap();
            q.executing -= 1;
        }
        shared.done_cv.notify_all();
    }
}

fn execute_batch(shared: &Shared, config: &EngineConfig, batch: Vec<Request>, waits: &[u64]) {
    let size = batch.len();
    let exec_start = Instant::now();
    // The batch span closes before any client is released, so a session
    // snapshot taken by a woken client always sees it.
    let logits = {
        let mut span = hydronas_telemetry::span("infer.batch", "batch");
        span.attr("batch", size);
        let inputs: Vec<Tensor> = batch.iter().map(|r| r.input.clone()).collect();
        let stacked = Tensor::stack(&inputs);
        shared.plan.run_batch(&stacked)
    };
    let exec_us = exec_start.elapsed().as_micros() as u64;
    // Count the batch before releasing any client: a caller that saw its
    // prediction must also see it reflected in the stats.
    shared.exec_us.fetch_add(exec_us, Ordering::Relaxed);
    shared.batches.fetch_add(1, Ordering::Relaxed);
    shared
        .batched_samples
        .fetch_add(size as u64, Ordering::Relaxed);
    shared
        .max_batch_observed
        .fetch_max(size as u64, Ordering::Relaxed);
    if hydronas_telemetry::enabled() {
        hydronas_telemetry::add("infer.batches", 1);
        hydronas_telemetry::add("infer.samples", size as u64);
        hydronas_telemetry::record_quantile("infer.batch.exec_wall_ms", exec_us as f64 / 1e3);
        hydronas_telemetry::record_value("infer.batch.size", size as f64);
        hydronas_telemetry::record_value(
            "infer.batch.fill_pct",
            size as f64 * 100.0 / config.max_batch as f64,
        );
    }
    let classes = logits.dims()[1];
    let rows = logits.as_slice();
    for (i, request) in batch.into_iter().enumerate() {
        let row = &rows[i * classes..(i + 1) * classes];
        // First index on ties, matching `Tensor::argmax_rows`.
        let mut class = 0usize;
        for (idx, &v) in row.iter().enumerate() {
            if v > row[class] {
                class = idx;
            }
        }
        // All per-request telemetry lands before the send wakes the
        // client, so a returned `infer()` implies recorded metrics. Every
        // sink is gated on the request's latched telemetry decision, not
        // a fresh `enabled()` check — a session starting mid-request must
        // not see the resolve half of a gauge it never saw enqueue.
        if request.telemetry {
            {
                let mut sp = hydronas_telemetry::span(
                    "infer.request.complete",
                    &format!("request {}", request.id),
                );
                if let Some(flow) = request.flow {
                    sp.flow(flow);
                }
                sp.attr("batch", size);
            }
            hydronas_telemetry::record_quantile(
                "infer.request.total_wall_ms",
                request.enqueued.elapsed().as_micros() as f64 / 1e3,
            );
            hydronas_telemetry::gauge_add("infer.inflight", -1);
        }
        shared.completed.fetch_add(1, Ordering::Relaxed);
        // Ignore send failures: the client may have dropped its handle.
        let _ = request.tx.send(Ok(Prediction {
            logits: row.to_vec(),
            class,
            batch_size: size,
            wait_us: waits[i],
        }));
    }
}
