//! Multi-threaded batching front-end over one shared [`ExecutionPlan`].
//!
//! ## Batching policy
//!
//! Requests land in a single mutex-guarded queue. A worker that finds the
//! queue non-empty starts a *collection window*: it keeps waiting in
//! tick-sized slices (`tick_us` each) until either `max_batch` requests are
//! pending or `max_wait_ticks` timeouts have elapsed, then drains up to
//! `max_batch` requests and executes them as one stacked forward pass. The
//! deadline counts observed timeouts rather than wall-clock timestamps — a
//! simulated clock in the spirit of the latency simulator — so the policy
//! is deterministic under test and never blocks an almost-full batch on a
//! slow clock.
//!
//! The plan is shared via `Arc`: workers hold no model state of their own,
//! so memory stays flat in the worker count (the whole point of the
//! read-only plan — contrast `ResNet::forward`, which needs `&mut self`).

use crate::plan::ExecutionPlan;
use hydronas_tensor::Tensor;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Batching and threading knobs for [`Engine::start`].
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Worker threads executing batches.
    pub workers: usize,
    /// Largest batch one worker will stack.
    pub max_batch: usize,
    /// Collection-window length, in ticks of `tick_us`.
    pub max_wait_ticks: u64,
    /// Duration of one simulated-clock tick, in microseconds.
    pub tick_us: u64,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            workers: 2,
            max_batch: 8,
            max_wait_ticks: 2,
            tick_us: 200,
        }
    }
}

/// Why a request could not be served.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InferError {
    /// The engine is shutting down (or a worker died before responding).
    Closed,
    /// Input was not `[C, H, W]` with the plan's channel count.
    InputShape {
        expected_channels: usize,
        dims: Vec<usize>,
    },
}

impl std::fmt::Display for InferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InferError::Closed => write!(f, "inference engine is closed"),
            InferError::InputShape {
                expected_channels,
                dims,
            } => write!(
                f,
                "bad input shape {dims:?}: expected [C={expected_channels}, H, W]"
            ),
        }
    }
}

impl std::error::Error for InferError {}

/// One classification result.
#[derive(Clone, Debug, PartialEq)]
pub struct Prediction {
    /// Raw logits, one per class.
    pub logits: Vec<f32>,
    /// Argmax class (first index on ties, matching `argmax_rows`).
    pub class: usize,
    /// Size of the batch this request was served in.
    pub batch_size: usize,
}

/// A pending request: wait on it to get the [`Prediction`].
#[derive(Debug)]
pub struct PredictionHandle {
    rx: mpsc::Receiver<Prediction>,
}

impl PredictionHandle {
    /// Blocks until the batch containing this request has executed.
    pub fn wait(self) -> Result<Prediction, InferError> {
        self.rx.recv().map_err(|_| InferError::Closed)
    }
}

/// Aggregate serving statistics since engine start.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    pub requests: u64,
    pub batches: u64,
    /// Sum of executed batch sizes (equals `requests` once drained).
    pub batched_samples: u64,
    /// Largest batch any worker executed.
    pub max_batch_observed: u64,
    /// Requests whose prediction has been computed (equals `requests`
    /// once drained; completion is counted before the client wakes).
    pub completed: u64,
    /// Deepest the pending queue has ever been.
    pub queue_peak: u64,
    /// Total wall-clock microseconds requests spent queued (enqueue →
    /// batch drain), summed over all completed requests.
    pub wait_us_total: u64,
    /// Total wall-clock microseconds workers spent executing batches.
    pub exec_us_total: u64,
}

impl EngineStats {
    /// Mean executed batch size.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_samples as f64 / self.batches as f64
        }
    }

    /// Mean per-request queue wait (enqueue → drain), milliseconds.
    pub fn mean_wait_ms(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.wait_us_total as f64 / 1e3 / self.completed as f64
        }
    }

    /// Mean per-batch execution time, milliseconds.
    pub fn mean_exec_ms(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.exec_us_total as f64 / 1e3 / self.batches as f64
        }
    }
}

struct Request {
    /// Dense per-engine request number (1-based submission order).
    id: u64,
    input: Tensor,
    tx: mpsc::Sender<Prediction>,
    /// When `submit` enqueued this request (for wait-time accounting).
    enqueued: Instant,
    /// Telemetry flow id linking this request's spans across threads;
    /// `None` when no session was active at submit time.
    flow: Option<u64>,
}

struct Queue {
    pending: VecDeque<Request>,
    open: bool,
}

struct Shared {
    plan: Arc<ExecutionPlan>,
    queue: Mutex<Queue>,
    cv: Condvar,
    next_request: AtomicU64,
    requests: AtomicU64,
    batches: AtomicU64,
    batched_samples: AtomicU64,
    max_batch_observed: AtomicU64,
    completed: AtomicU64,
    queue_peak: AtomicU64,
    wait_us: AtomicU64,
    exec_us: AtomicU64,
}

/// The serving front-end: submit `[C, H, W]` tensors, receive logits.
pub struct Engine {
    shared: Arc<Shared>,
    config: EngineConfig,
    workers: Vec<JoinHandle<()>>,
}

impl Engine {
    /// Spawns `config.workers` threads over a shared compiled plan.
    pub fn start(plan: Arc<ExecutionPlan>, config: EngineConfig) -> Engine {
        assert!(config.workers > 0, "need at least one worker");
        assert!(config.max_batch > 0, "max_batch must be positive");
        let shared = Arc::new(Shared {
            plan,
            queue: Mutex::new(Queue {
                pending: VecDeque::new(),
                open: true,
            }),
            cv: Condvar::new(),
            next_request: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_samples: AtomicU64::new(0),
            max_batch_observed: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            queue_peak: AtomicU64::new(0),
            wait_us: AtomicU64::new(0),
            exec_us: AtomicU64::new(0),
        });
        let workers = (0..config.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, &config))
            })
            .collect();
        Engine {
            shared,
            config,
            workers,
        }
    }

    /// The plan this engine serves.
    pub fn plan(&self) -> &ExecutionPlan {
        &self.shared.plan
    }

    /// The batching configuration in force.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Enqueues one `[C, H, W]` sample; returns a handle to wait on.
    pub fn submit(&self, input: Tensor) -> Result<PredictionHandle, InferError> {
        let expected = self.shared.plan.arch().in_channels;
        if input.shape().ndim() != 3 || input.dims()[0] != expected {
            return Err(InferError::InputShape {
                expected_channels: expected,
                dims: input.dims().to_vec(),
            });
        }
        let (tx, rx) = mpsc::channel();
        let telemetry = hydronas_telemetry::enabled();
        let id = self.shared.next_request.fetch_add(1, Ordering::Relaxed) + 1;
        let flow = if telemetry {
            Some(hydronas_telemetry::next_flow_id())
        } else {
            None
        };
        {
            // The enqueue span lives on the client thread; the flow id
            // links it to the batch/complete spans on the worker thread.
            let mut sp = hydronas_telemetry::span(
                "infer.request.enqueue",
                &if telemetry {
                    format!("request {id}")
                } else {
                    String::new()
                },
            );
            if let Some(flow) = flow {
                sp.flow(flow);
                sp.attr("request", id);
            }
            let mut q = self.shared.queue.lock().unwrap();
            if !q.open {
                return Err(InferError::Closed);
            }
            q.pending.push_back(Request {
                id,
                input,
                tx,
                enqueued: Instant::now(),
                flow,
            });
            self.shared
                .queue_peak
                .fetch_max(q.pending.len() as u64, Ordering::Relaxed);
        }
        self.shared.requests.fetch_add(1, Ordering::Relaxed);
        if telemetry {
            hydronas_telemetry::add("infer.requests", 1);
            hydronas_telemetry::gauge_add("infer.queue.depth", 1);
            hydronas_telemetry::gauge_add("infer.inflight", 1);
        }
        self.shared.cv.notify_one();
        Ok(PredictionHandle { rx })
    }

    /// Submits and blocks for the result — the single-stream client path.
    pub fn infer(&self, input: Tensor) -> Result<Prediction, InferError> {
        self.submit(input)?.wait()
    }

    /// Statistics snapshot (monotonic counters, relaxed reads).
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            requests: self.shared.requests.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
            batched_samples: self.shared.batched_samples.load(Ordering::Relaxed),
            max_batch_observed: self.shared.max_batch_observed.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            queue_peak: self.shared.queue_peak.load(Ordering::Relaxed),
            wait_us_total: self.shared.wait_us.load(Ordering::Relaxed),
            exec_us_total: self.shared.exec_us.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting new requests; workers drain the queue then exit.
    pub fn close(&self) {
        self.shared.queue.lock().unwrap().open = false;
        self.shared.cv.notify_all();
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, config: &EngineConfig) {
    loop {
        let (batch, collect_us) = {
            let mut q = shared.queue.lock().unwrap();
            // Sleep until there is work or the engine closes.
            while q.pending.is_empty() && q.open {
                q = shared.cv.wait(q).unwrap();
            }
            if q.pending.is_empty() {
                return; // closed and drained
            }
            // Collection window: give co-arriving requests `max_wait_ticks`
            // simulated ticks to fill the batch. Only an elapsed timeout
            // advances the clock; wakeups from new arrivals re-check for a
            // full batch for free.
            let window_start = Instant::now();
            let mut elapsed = 0u64;
            while q.pending.len() < config.max_batch && q.open && elapsed < config.max_wait_ticks {
                let (guard, timeout) = shared
                    .cv
                    .wait_timeout(q, Duration::from_micros(config.tick_us))
                    .unwrap();
                q = guard;
                if timeout.timed_out() {
                    elapsed += 1;
                }
            }
            let take = q.pending.len().min(config.max_batch);
            if take == 0 {
                // Another worker drained the queue during our collection
                // window — go back to sleep instead of executing an empty
                // batch.
                continue;
            }
            let batch = q.pending.drain(..take).collect::<Vec<Request>>();
            (batch, window_start.elapsed().as_micros() as u64)
        };
        // Queue-wait accounting at drain time: the wait phase ends here,
        // before execution begins.
        let mut wait_us_sum = 0u64;
        for request in &batch {
            wait_us_sum += request.enqueued.elapsed().as_micros() as u64;
        }
        shared.wait_us.fetch_add(wait_us_sum, Ordering::Relaxed);
        if hydronas_telemetry::enabled() {
            hydronas_telemetry::gauge_add("infer.queue.depth", -(batch.len() as i64));
            hydronas_telemetry::record_quantile(
                "infer.batch.collect_wall_ms",
                collect_us as f64 / 1e3,
            );
            for request in &batch {
                hydronas_telemetry::record_quantile(
                    "infer.request.wait_wall_ms",
                    request.enqueued.elapsed().as_micros() as f64 / 1e3,
                );
            }
        }
        execute_batch(shared, config, batch);
    }
}

fn execute_batch(shared: &Shared, config: &EngineConfig, batch: Vec<Request>) {
    let size = batch.len();
    let exec_start = Instant::now();
    // The batch span closes before any client is released, so a session
    // snapshot taken by a woken client always sees it.
    let logits = {
        let mut span = hydronas_telemetry::span("infer.batch", "batch");
        span.attr("batch", size);
        let inputs: Vec<Tensor> = batch.iter().map(|r| r.input.clone()).collect();
        let stacked = Tensor::stack(&inputs);
        shared.plan.run_batch(&stacked)
    };
    let exec_us = exec_start.elapsed().as_micros() as u64;
    // Count the batch before releasing any client: a caller that saw its
    // prediction must also see it reflected in the stats.
    shared.exec_us.fetch_add(exec_us, Ordering::Relaxed);
    shared.batches.fetch_add(1, Ordering::Relaxed);
    shared
        .batched_samples
        .fetch_add(size as u64, Ordering::Relaxed);
    shared
        .max_batch_observed
        .fetch_max(size as u64, Ordering::Relaxed);
    if hydronas_telemetry::enabled() {
        hydronas_telemetry::add("infer.batches", 1);
        hydronas_telemetry::add("infer.samples", size as u64);
        hydronas_telemetry::record_quantile("infer.batch.exec_wall_ms", exec_us as f64 / 1e3);
        hydronas_telemetry::record_value("infer.batch.size", size as f64);
        hydronas_telemetry::record_value(
            "infer.batch.fill_pct",
            size as f64 * 100.0 / config.max_batch as f64,
        );
    }
    let classes = logits.dims()[1];
    let rows = logits.as_slice();
    for (i, request) in batch.into_iter().enumerate() {
        let row = &rows[i * classes..(i + 1) * classes];
        // First index on ties, matching `Tensor::argmax_rows`.
        let mut class = 0usize;
        for (idx, &v) in row.iter().enumerate() {
            if v > row[class] {
                class = idx;
            }
        }
        // All per-request telemetry lands before the send wakes the
        // client, so a returned `infer()` implies recorded metrics.
        if hydronas_telemetry::enabled() {
            {
                let mut sp = hydronas_telemetry::span(
                    "infer.request.complete",
                    &format!("request {}", request.id),
                );
                if let Some(flow) = request.flow {
                    sp.flow(flow);
                }
                sp.attr("batch", size);
            }
            hydronas_telemetry::record_quantile(
                "infer.request.total_wall_ms",
                request.enqueued.elapsed().as_micros() as f64 / 1e3,
            );
            hydronas_telemetry::gauge_add("infer.inflight", -1);
        }
        shared.completed.fetch_add(1, Ordering::Relaxed);
        // Ignore send failures: the client may have dropped its handle.
        let _ = request.tx.send(Prediction {
            logits: row.to_vec(),
            class,
            batch_size: size,
        });
    }
}
