//! # hydronas-infer
//!
//! The serving side of the HydroNAS workspace: compile a trained
//! [`hydronas_nn::ResNet`] into an immutable [`ExecutionPlan`] (conv+BN
//! folding into fused per-row bias/ReLU GEMM epilogues, optional int8
//! weight storage with dequant-on-load) and serve it through a
//! multi-threaded batching [`Engine`] that aggregates concurrent requests
//! into stacked forward passes over one `Arc`-shared plan.
//!
//! The paper's deliverable is a deployment model — Pareto-selected CNNs
//! classifying drainage crossings on resource-limited devices — and this
//! crate closes the search→serve gap: the same architecture the NAS sweep
//! scored with the latency predictor and the quantized-memory objective
//! can now actually run behind a request front-end, with telemetry on the
//! hot path and measured latency to validate the predictor against.
//!
//! ## Quick example
//!
//! ```
//! use hydronas_infer::{Engine, EngineConfig, ExecutionPlan};
//! use hydronas_nn::ResNet;
//! use hydronas_tensor::TensorRng;
//! use std::sync::Arc;
//!
//! let mut arch = hydronas_graph::ArchConfig::baseline(5);
//! arch.initial_features = 4; // tiny for doc-test speed
//! let mut rng = TensorRng::seed_from_u64(0);
//! let model = ResNet::new(&arch, &mut rng);
//!
//! let plan = Arc::new(ExecutionPlan::builder(&model).build().unwrap());
//! let engine = Engine::start(plan, EngineConfig::default());
//! let x = hydronas_tensor::uniform(&[5, 16, 16], -1.0, 1.0, &mut rng);
//! let prediction = engine.infer(x).unwrap();
//! assert_eq!(prediction.logits.len(), 2);
//! ```
//!
//! For true int8 serving, calibrate a quantized plan through the builder:
//!
//! ```
//! use hydronas_graph::CalibrationMethod;
//! use hydronas_infer::{ExecutionPlan, Numerics, QuantizationScheme};
//! use hydronas_nn::ResNet;
//! use hydronas_tensor::TensorRng;
//!
//! let mut arch = hydronas_graph::ArchConfig::baseline(5);
//! arch.initial_features = 4;
//! let mut rng = TensorRng::seed_from_u64(0);
//! let model = ResNet::new(&arch, &mut rng);
//! let batch = hydronas_tensor::uniform(&[2, 5, 16, 16], -1.0, 1.0, &mut rng);
//!
//! let plan = ExecutionPlan::builder(&model)
//!     .numerics(Numerics::QuantizedInt8)
//!     .quantization(
//!         QuantizationScheme::per_channel().calibrate(CalibrationMethod::MinMax, &batch),
//!     )
//!     .build()
//!     .unwrap();
//! assert!(plan.weight_bytes() > 0);
//! ```

mod engine;
mod plan;

pub use engine::{
    DrainStats, Engine, EngineConfig, EngineConfigBuilder, EngineStats, InferError, InferRequest,
    Prediction, PredictionHandle, RetryConfig, ShedPolicy,
};
pub use plan::{
    ExecutionPlan, LayerCost, LayerProfile, Numerics, PlanBuilder, PlanConfig, QuantizationScheme,
};

#[cfg(test)]
mod tests {
    use super::*;
    use hydronas_graph::{ArchConfig, CalibrationMethod, PoolConfig, Precision};
    use hydronas_nn::ResNet;
    use hydronas_tensor::{approx_eq, uniform, Tensor, TensorRng};
    use std::sync::Arc;

    fn tiny_arch() -> ArchConfig {
        ArchConfig {
            in_channels: 5,
            kernel_size: 3,
            stride: 2,
            padding: 1,
            pool: None,
            initial_features: 4,
            num_classes: 2,
        }
    }

    fn pooled_arch() -> ArchConfig {
        ArchConfig {
            in_channels: 3,
            kernel_size: 7,
            stride: 2,
            padding: 3,
            pool: Some(PoolConfig {
                kernel: 3,
                stride: 2,
            }),
            initial_features: 8,
            num_classes: 4,
        }
    }

    /// A model with non-trivial BN running stats (one train step's worth).
    fn warmed_model(arch: &ArchConfig, seed: u64) -> ResNet {
        let mut rng = TensorRng::seed_from_u64(seed);
        let mut model = ResNet::new(arch, &mut rng);
        let warm = uniform(&[4, arch.in_channels, 32, 32], -1.0, 1.0, &mut rng);
        let _ = model.forward(&warm, true);
        model
    }

    #[test]
    fn exact_plan_is_bit_identical_to_forward_eval() {
        for (seed, arch) in [tiny_arch(), pooled_arch()].into_iter().enumerate() {
            let model = warmed_model(&arch, seed as u64 + 1);
            let plan = ExecutionPlan::builder(&model)
                .numerics(Numerics::Exact)
                .build()
                .unwrap();
            let mut rng = TensorRng::seed_from_u64(99);
            let x = uniform(&[3, arch.in_channels, 32, 32], -1.0, 1.0, &mut rng);
            assert_eq!(plan.run_batch(&x), model.forward_eval(&x), "arch {arch:?}");
        }
    }

    #[test]
    fn fused_plan_matches_forward_eval_within_tolerance() {
        let arch = tiny_arch();
        let model = warmed_model(&arch, 7);
        let plan = ExecutionPlan::builder(&model).build().unwrap();
        let mut rng = TensorRng::seed_from_u64(42);
        let x = uniform(&[4, arch.in_channels, 32, 32], -1.0, 1.0, &mut rng);
        let fused = plan.run_batch(&x);
        let reference = model.forward_eval(&x);
        for (a, b) in fused.as_slice().iter().zip(reference.as_slice()) {
            assert!(approx_eq(*a, *b, 1e-3), "{a} vs {b}");
        }
    }

    #[test]
    fn batched_rows_are_bit_identical_to_single_runs() {
        // pooled_arch's deep stages hit the GEMM small/packed divergence
        // zone (k = 8·initial_features·9 > 256 with tiny column counts),
        // exactly where a dispatching kernel would change bits with batch
        // size — the Fused path must hold its always-packed contract there.
        for (arch, seed) in [(tiny_arch(), 11u64), (pooled_arch(), 12u64)] {
            let model = warmed_model(&arch, seed);
            for numerics in [Numerics::Exact, Numerics::Fused] {
                let plan = ExecutionPlan::builder(&model)
                    .numerics(numerics)
                    .build()
                    .unwrap();
                let mut rng = TensorRng::seed_from_u64(5);
                let batch = uniform(&[3, arch.in_channels, 32, 32], -1.0, 1.0, &mut rng);
                let batched = plan.run_batch(&batch);
                let dims = batch.dims();
                let sample = dims[1] * dims[2] * dims[3];
                for i in 0..dims[0] {
                    let single = Tensor::from_vec(
                        batch.as_slice()[i * sample..(i + 1) * sample].to_vec(),
                        &[dims[1], dims[2], dims[3]],
                    );
                    let classes = batched.dims()[1];
                    assert_eq!(
                        plan.run_single(&single),
                        batched.as_slice()[i * classes..(i + 1) * classes].to_vec(),
                        "row {i} under {numerics:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn int8_plan_stays_close_to_fp32_and_is_4x_smaller() {
        let arch = tiny_arch();
        let model = warmed_model(&arch, 13);
        let fp32 = ExecutionPlan::builder(&model).build().unwrap();
        let int8 = ExecutionPlan::builder(&model)
            .precision(Precision::Int8)
            .build()
            .unwrap();
        // Weight payloads shrink ~4x (biases/BN vectors stay f32, so the
        // whole-plan ratio lands a bit under 4).
        let ratio = fp32.weight_bytes() as f64 / int8.weight_bytes() as f64;
        assert!((3.0..4.1).contains(&ratio), "ratio {ratio}");

        let mut rng = TensorRng::seed_from_u64(3);
        let x = uniform(&[4, arch.in_channels, 32, 32], -1.0, 1.0, &mut rng);
        let a = fp32.run_batch(&x);
        let b = int8.run_batch(&x);
        // Bounded logit delta (quantization error accumulates through all
        // eight blocks), and identical argmax on this seeded batch.
        for (p, q) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((p - q).abs() < 0.25, "{p} vs {q}");
        }
        assert_eq!(a.argmax_rows(), b.argmax_rows());
    }

    #[test]
    fn int8_quantize_dequantize_forward_eval_parity() {
        // The satellite contract straight through the nn model: replace
        // every weight by its quantize→dequantize image and compare
        // forward_eval logits against fp32 on a seeded batch.
        let arch = tiny_arch();
        let model = warmed_model(&arch, 17);
        let mut rng = TensorRng::seed_from_u64(23);
        let x = uniform(&[4, arch.in_channels, 32, 32], -1.0, 1.0, &mut rng);
        let reference = model.forward_eval(&x);

        let mut quantized = warmed_model(&arch, 17);
        use hydronas_nn::ParamVisitor;
        quantized.visit_params(&mut |p| {
            let q = hydronas_graph::quantize_tensor(p.value.as_slice());
            let back = q.dequantize();
            p.value.as_mut_slice().copy_from_slice(&back);
        });
        let logits = quantized.forward_eval(&x);
        let mut worst = 0.0f32;
        for (a, b) in logits.as_slice().iter().zip(reference.as_slice()) {
            worst = worst.max((a - b).abs());
        }
        assert!(worst < 0.1, "worst logit delta {worst}");
        assert_eq!(logits.argmax_rows(), reference.argmax_rows());
    }

    #[test]
    fn engine_batch_of_one_is_bit_identical_to_forward_eval() {
        let arch = tiny_arch();
        let model = warmed_model(&arch, 19);
        let plan = Arc::new(
            ExecutionPlan::builder(&model)
                .numerics(Numerics::Exact)
                .build()
                .unwrap(),
        );
        let engine = Engine::start(
            plan,
            EngineConfig {
                workers: 1,
                max_batch: 1, // forces batch=1 execution
                max_wait_ticks: 0,
                tick_us: 50,
                ..EngineConfig::default()
            },
        );
        let mut rng = TensorRng::seed_from_u64(31);
        for _ in 0..4 {
            let x = uniform(&[arch.in_channels, 32, 32], -1.0, 1.0, &mut rng);
            let dims = x.dims();
            let batched = Tensor::from_vec(x.as_slice().to_vec(), &[1, dims[0], dims[1], dims[2]]);
            let expected = model.forward_eval(&batched);
            let got = engine.infer(x).unwrap();
            assert_eq!(got.batch_size, 1);
            assert_eq!(got.logits, expected.as_slice().to_vec());
            assert_eq!(got.class, expected.argmax_rows()[0]);
        }
    }

    #[test]
    fn concurrent_clients_get_correct_results_and_batches_form() {
        let arch = tiny_arch();
        let model = warmed_model(&arch, 23);
        let plan = Arc::new(ExecutionPlan::builder(&model).build().unwrap());
        let engine = Arc::new(Engine::start(
            Arc::clone(&plan),
            EngineConfig {
                workers: 2,
                max_batch: 4,
                max_wait_ticks: 4,
                tick_us: 500,
                ..EngineConfig::default()
            },
        ));
        let mut rng = TensorRng::seed_from_u64(37);
        let inputs: Vec<Tensor> = (0..12)
            .map(|_| uniform(&[arch.in_channels, 32, 32], -1.0, 1.0, &mut rng))
            .collect();
        let expected: Vec<Vec<f32>> = inputs.iter().map(|x| plan.run_single(x)).collect();

        let handles: Vec<_> = inputs
            .iter()
            .map(|x| {
                let engine = Arc::clone(&engine);
                let x = x.clone();
                std::thread::spawn(move || engine.infer(x).unwrap())
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let got = h.join().unwrap();
            assert_eq!(got.logits, expected[i], "request {i}");
            assert!(got.batch_size >= 1 && got.batch_size <= 4);
        }
        let stats = engine.stats();
        assert_eq!(stats.requests, 12);
        assert_eq!(stats.batched_samples, 12);
        // With 12 co-arriving requests and max_batch 4, at least one
        // worker must have stacked a multi-sample batch.
        assert!(stats.batches < 12, "no batching happened: {stats:?}");
        assert!(stats.max_batch_observed >= 2);
    }

    /// Regression test: with several workers, one worker can drain the
    /// queue while another is still inside its collection window; the
    /// loser used to execute an *empty* batch and panic in
    /// `Tensor::stack`, silently killing the worker thread. Bursty
    /// traffic over two workers makes the window collision overwhelmingly
    /// likely; every request must still be answered and accounted for.
    #[test]
    fn racing_workers_never_execute_empty_batches() {
        let arch = tiny_arch();
        let model = warmed_model(&arch, 43);
        let plan = Arc::new(ExecutionPlan::builder(&model).build().unwrap());
        let engine = Arc::new(Engine::start(
            plan,
            EngineConfig {
                workers: 2,
                max_batch: 4,
                max_wait_ticks: 2,
                tick_us: 100,
                ..EngineConfig::default()
            },
        ));
        let clients = 6;
        let per_client = 4;
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let engine = Arc::clone(&engine);
                std::thread::spawn(move || {
                    let mut rng = TensorRng::seed_from_u64(100 + c as u64);
                    for _ in 0..per_client {
                        let x = uniform(&[5, 16, 16], -1.0, 1.0, &mut rng);
                        engine.infer(x).expect("no worker may die mid-run");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = engine.stats();
        assert_eq!(stats.requests, (clients * per_client) as u64);
        assert_eq!(stats.batched_samples, stats.requests);
    }

    #[test]
    fn engine_rejects_bad_shapes_and_closes_cleanly() {
        let arch = tiny_arch();
        let model = warmed_model(&arch, 29);
        let plan = Arc::new(ExecutionPlan::builder(&model).build().unwrap());
        let engine = Engine::start(plan, EngineConfig::default());
        // Wrong channel count.
        let bad = Tensor::zeros(&[2, 8, 8]);
        match engine.submit(bad) {
            Err(InferError::InputShape {
                expected_channels, ..
            }) => assert_eq!(expected_channels, 5),
            other => panic!("expected shape error, got {other:?}"),
        }
        // Wrong rank.
        assert!(engine.submit(Tensor::zeros(&[1, 5, 8, 8])).is_err());
        engine.close();
        let late = engine.submit(Tensor::zeros(&[5, 8, 8]));
        assert_eq!(late.unwrap_err(), InferError::Closed);
    }

    #[test]
    fn profile_batch_is_bit_identical_to_run_batch() {
        // The profiler is a mirror implementation of the forward pass;
        // this test is the guard that keeps the two in lockstep.
        for (arch, seed) in [(tiny_arch(), 51u64), (pooled_arch(), 52u64)] {
            let model = warmed_model(&arch, seed);
            for numerics in [Numerics::Exact, Numerics::Fused] {
                let plan = ExecutionPlan::builder(&model)
                    .numerics(numerics)
                    .build()
                    .unwrap();
                let mut rng = TensorRng::seed_from_u64(53);
                let x = uniform(&[3, arch.in_channels, 32, 32], -1.0, 1.0, &mut rng);
                let expected = plan.run_batch(&x);
                let (got, profile) = plan.profile_batch(&x);
                assert_eq!(got, expected, "under {numerics:?}");
                assert_eq!(profile.batch, 3);
                let names: Vec<&str> = profile.layers.iter().map(|l| l.name.as_str()).collect();
                assert_eq!(names.first(), Some(&"stem"));
                assert_eq!(names.last(), Some(&"fc"));
                assert!(names.contains(&"block0.conv1"));
                assert!(names.contains(&"global_avg_pool"));
                // pooled_arch has a stem pool; tiny_arch does not.
                assert_eq!(names.contains(&"stem.pool"), arch.pool.is_some());
                // Conv layers must pick up FLOPs from op accounting, and
                // percentages must sum to ~100.
                let stem = &profile.layers[0];
                assert!(stem.flops > 0, "stem FLOPs missing under {numerics:?}");
                let pct_sum: f64 = profile.layers.iter().map(|l| l.pct).sum();
                assert!((pct_sum - 100.0).abs() < 1e-6, "pct sum {pct_sum}");
                assert!(profile.total_wall_ms >= 0.0);
            }
        }
    }

    #[test]
    fn profile_works_inside_a_caller_session_without_polluting_counts() {
        let arch = tiny_arch();
        let model = warmed_model(&arch, 57);
        let plan = ExecutionPlan::builder(&model).build().unwrap();
        let mut rng = TensorRng::seed_from_u64(58);
        let x = uniform(&[2, arch.in_channels, 32, 32], -1.0, 1.0, &mut rng);
        let session = hydronas_telemetry::session();
        let (_, profile) = plan.profile_batch(&x);
        assert!(profile.layers.iter().any(|l| l.flops > 0));
        // The caller's session stays active and keeps the op counters.
        assert!(hydronas_telemetry::enabled());
        let m = session.metrics();
        assert!(m.counters.keys().any(|k| k.ends_with(".flops")));
    }

    #[test]
    fn stats_track_wait_exec_and_queue_peak() {
        let arch = tiny_arch();
        let model = warmed_model(&arch, 61);
        let plan = Arc::new(ExecutionPlan::builder(&model).build().unwrap());
        let engine = Engine::start(
            plan,
            EngineConfig {
                workers: 1,
                max_batch: 1,
                max_wait_ticks: 0,
                tick_us: 50,
                ..EngineConfig::default()
            },
        );
        let mut rng = TensorRng::seed_from_u64(62);
        for _ in 0..3 {
            let x = uniform(&[arch.in_channels, 16, 16], -1.0, 1.0, &mut rng);
            engine.infer(x).unwrap();
        }
        let stats = engine.stats();
        assert_eq!(stats.completed, 3);
        assert!(stats.queue_peak >= 1, "{stats:?}");
        assert!(stats.exec_us_total > 0, "{stats:?}");
        assert!(stats.mean_exec_ms() > 0.0);
        assert!(stats.mean_wait_ms() >= 0.0);
    }

    #[test]
    fn plan_weight_bytes_track_parameter_count() {
        let arch = tiny_arch();
        let model = warmed_model(&arch, 41);
        let plan = ExecutionPlan::builder(&model).build().unwrap();
        // Fused fp32: 4 bytes per conv/fc weight scalar + 4 per folded bias
        // and fc bias scalar. That must cover at least every model weight.
        assert!(plan.weight_bytes() >= 4 * 9 * 4 * 5, "stem weights missing");
        assert_eq!(plan.arch(), &arch);
        assert_eq!(plan.config().numerics, Numerics::Fused);
    }

    /// Seeded calibration batch for quantized-plan tests.
    fn calibration_batch(arch: &ArchConfig, seed: u64) -> Tensor {
        let mut rng = TensorRng::seed_from_u64(seed);
        uniform(&[4, arch.in_channels, 32, 32], -1.0, 1.0, &mut rng)
    }

    /// Bounds the int8-vs-fp32 logit drift and checks argmax agreement on
    /// every row whose fp32 top-2 margin comfortably exceeds the drift —
    /// quantization can only legitimately flip a decision when the margin
    /// is inside the perturbation. (The ≤0.5% *accuracy* contract runs on
    /// a trained model in the workspace-level quantized-serving test;
    /// these models are untrained, so raw argmax equality would test
    /// noise.)
    fn assert_quantization_agreement(fp32: &Tensor, int8: &Tensor, delta_bound: f32) {
        let classes = fp32.dims()[1];
        let mut worst = 0.0f32;
        for (p, q) in fp32.as_slice().iter().zip(int8.as_slice()) {
            worst = worst.max((p - q).abs());
        }
        assert!(worst < delta_bound, "worst logit delta {worst}");
        for (i, (f, q)) in fp32
            .argmax_rows()
            .iter()
            .zip(&int8.argmax_rows())
            .enumerate()
        {
            let row = &fp32.as_slice()[i * classes..(i + 1) * classes];
            let mut sorted = row.to_vec();
            sorted.sort_by(f32::total_cmp);
            let margin = sorted[classes - 1] - sorted[classes - 2];
            if margin > 2.0 * worst {
                assert_eq!(f, q, "row {i} flipped despite fp32 margin {margin}");
            }
        }
    }

    fn quantized_plan(model: &ResNet, batch: &Tensor) -> ExecutionPlan {
        ExecutionPlan::builder(model)
            .numerics(Numerics::QuantizedInt8)
            .quantization(
                QuantizationScheme::per_channel().calibrate(CalibrationMethod::MinMax, batch),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn builder_rejects_invalid_quantization_setups() {
        let arch = tiny_arch();
        let model = warmed_model(&arch, 71);
        let batch = calibration_batch(&arch, 72);
        let reason = |r: Result<ExecutionPlan, InferError>| match r {
            Err(InferError::InvalidQuantization { reason }) => reason,
            Ok(_) => panic!("expected InvalidQuantization, got a plan"),
            Err(other) => panic!("expected InvalidQuantization, got {other:?}"),
        };
        // Quantized numerics without a scheme.
        let r = reason(
            ExecutionPlan::builder(&model)
                .numerics(Numerics::QuantizedInt8)
                .build(),
        );
        assert!(r.contains("QuantizationScheme"), "{r}");
        // A scheme that was never calibrated.
        let r = reason(
            ExecutionPlan::builder(&model)
                .numerics(Numerics::QuantizedInt8)
                .quantization(QuantizationScheme::per_channel())
                .build(),
        );
        assert!(r.contains("calibrat"), "{r}");
        // A scheme attached to f32 numerics.
        let r = reason(
            ExecutionPlan::builder(&model)
                .quantization(
                    QuantizationScheme::per_channel().calibrate(CalibrationMethod::MinMax, &batch),
                )
                .build(),
        );
        assert!(r.contains("QuantizedInt8"), "{r}");
        // An out-of-range percentile.
        let r = reason(
            ExecutionPlan::builder(&model)
                .numerics(Numerics::QuantizedInt8)
                .quantization(
                    QuantizationScheme::per_channel()
                        .calibrate(CalibrationMethod::Percentile(1.5), &batch),
                )
                .build(),
        );
        assert!(r.contains("percentile"), "{r}");
        // A calibration batch with the wrong channel count.
        let bad = Tensor::zeros(&[2, arch.in_channels + 1, 16, 16]);
        let r = reason(
            ExecutionPlan::builder(&model)
                .numerics(Numerics::QuantizedInt8)
                .quantization(
                    QuantizationScheme::per_channel().calibrate(CalibrationMethod::MinMax, &bad),
                )
                .build(),
        );
        assert!(r.contains("channels"), "{r}");
        // A calibration batch that is not NCHW.
        let flat = Tensor::zeros(&[arch.in_channels, 16, 16]);
        let r = reason(
            ExecutionPlan::builder(&model)
                .numerics(Numerics::QuantizedInt8)
                .quantization(
                    QuantizationScheme::per_channel().calibrate(CalibrationMethod::MinMax, &flat),
                )
                .build(),
        );
        assert!(r.contains("NCHW"), "{r}");
        // The error Displays with context.
        let err = InferError::InvalidQuantization {
            reason: "xyz".to_string(),
        };
        assert!(err.to_string().contains("invalid quantization: xyz"));
    }

    #[test]
    fn quantized_plan_tracks_fp32_and_shrinks_weights() {
        for (arch, seed) in [(tiny_arch(), 81u64), (pooled_arch(), 82u64)] {
            let model = warmed_model(&arch, seed);
            let batch = calibration_batch(&arch, seed + 100);
            let fp32 = ExecutionPlan::builder(&model).build().unwrap();
            let int8 = quantized_plan(&model, &batch);
            assert_eq!(int8.config().numerics, Numerics::QuantizedInt8);
            assert_eq!(int8.config().precision, Precision::Int8);
            // True int8 storage: ~4x smaller than the fp32 plan (biases and
            // per-channel scales keep it under exactly 4).
            let ratio = fp32.weight_bytes() as f64 / int8.weight_bytes() as f64;
            assert!((3.0..4.2).contains(&ratio), "ratio {ratio} for {arch:?}");

            let mut rng = TensorRng::seed_from_u64(seed + 200);
            let x = uniform(&[4, arch.in_channels, 32, 32], -1.0, 1.0, &mut rng);
            let a = fp32.run_batch(&x);
            let b = int8.run_batch(&x);
            assert_quantization_agreement(&a, &b, 0.8);
        }
    }

    #[test]
    fn quantized_rows_are_bit_identical_to_single_runs() {
        // Static calibration scales mean batch composition cannot leak into
        // per-sample results; integer kernels make each sample exact.
        let arch = pooled_arch();
        let model = warmed_model(&arch, 83);
        let batch = calibration_batch(&arch, 84);
        let plan = quantized_plan(&model, &batch);
        let mut rng = TensorRng::seed_from_u64(85);
        let x = uniform(&[3, arch.in_channels, 32, 32], -1.0, 1.0, &mut rng);
        let batched = plan.run_batch(&x);
        let dims = x.dims();
        let sample = dims[1] * dims[2] * dims[3];
        let classes = batched.dims()[1];
        for i in 0..dims[0] {
            let single = Tensor::from_vec(
                x.as_slice()[i * sample..(i + 1) * sample].to_vec(),
                &[dims[1], dims[2], dims[3]],
            );
            assert_eq!(
                plan.run_single(&single),
                batched.as_slice()[i * classes..(i + 1) * classes].to_vec(),
                "row {i}"
            );
        }
    }

    #[test]
    fn quantized_profile_batch_is_bit_identical_to_run_batch() {
        let arch = tiny_arch();
        let model = warmed_model(&arch, 87);
        let batch = calibration_batch(&arch, 88);
        let plan = quantized_plan(&model, &batch);
        let mut rng = TensorRng::seed_from_u64(89);
        let x = uniform(&[2, arch.in_channels, 32, 32], -1.0, 1.0, &mut rng);
        let expected = plan.run_batch(&x);
        let (got, profile) = plan.profile_batch(&x);
        assert_eq!(got, expected);
        // The int8 conv kernel reports FLOPs through op accounting too.
        let stem = &profile.layers[0];
        assert!(stem.flops > 0, "quantized stem FLOPs missing");
    }

    #[test]
    fn quantized_engine_serves_bit_identical_to_plan() {
        let arch = tiny_arch();
        let model = warmed_model(&arch, 91);
        let batch = calibration_batch(&arch, 92);
        let plan = Arc::new(quantized_plan(&model, &batch));
        let engine = Engine::start(Arc::clone(&plan), EngineConfig::default());
        let mut rng = TensorRng::seed_from_u64(93);
        for _ in 0..3 {
            let x = uniform(&[arch.in_channels, 32, 32], -1.0, 1.0, &mut rng);
            let expected = plan.run_single(&x);
            let got = engine.infer(x).unwrap();
            assert_eq!(got.logits, expected);
        }
    }

    #[test]
    fn activation_bytes_reflect_geometry_and_precision() {
        let arch = tiny_arch();
        let model = warmed_model(&arch, 95);
        let batch = calibration_batch(&arch, 96);
        let fp32 = ExecutionPlan::builder(&model).build().unwrap();
        let int8 = quantized_plan(&model, &batch);
        let f = fp32.activation_bytes(8, 32);
        let q = int8.activation_bytes(8, 32);
        assert!(f > 0 && q > 0);
        // The quantized path's im2col columns are 1 byte/element vs 4.
        assert!(q < f, "int8 transient bytes {q} not below fp32 {f}");
        // Scaling the batch scales the transient footprint.
        assert!(fp32.activation_bytes(16, 32) > f);
    }

    #[test]
    fn per_tensor_scheme_builds_and_stores_fewer_scale_bytes() {
        let arch = tiny_arch();
        let model = warmed_model(&arch, 97);
        let batch = calibration_batch(&arch, 98);
        let per_channel = quantized_plan(&model, &batch);
        let per_tensor = ExecutionPlan::builder(&model)
            .numerics(Numerics::QuantizedInt8)
            .quantization(
                QuantizationScheme::per_tensor().calibrate(CalibrationMethod::MinMax, &batch),
            )
            .build()
            .unwrap();
        // Same payload, fewer stored scales.
        assert!(per_tensor.weight_bytes() < per_channel.weight_bytes());
        // Still close enough to fp32 to agree on this batch's argmax.
        let mut rng = TensorRng::seed_from_u64(99);
        let x = uniform(&[4, arch.in_channels, 32, 32], -1.0, 1.0, &mut rng);
        let fp32 = ExecutionPlan::builder(&model).build().unwrap();
        assert_quantization_agreement(&fp32.run_batch(&x), &per_tensor.run_batch(&x), 1.2);
    }

    #[test]
    fn percentile_calibration_builds_and_stays_close() {
        let arch = tiny_arch();
        let model = warmed_model(&arch, 101);
        let batch = calibration_batch(&arch, 102);
        let plan = ExecutionPlan::builder(&model)
            .numerics(Numerics::QuantizedInt8)
            .quantization(
                QuantizationScheme::per_channel()
                    .calibrate(CalibrationMethod::Percentile(0.999), &batch),
            )
            .build()
            .unwrap();
        let fp32 = ExecutionPlan::builder(&model).build().unwrap();
        let mut rng = TensorRng::seed_from_u64(103);
        let x = uniform(&[4, arch.in_channels, 32, 32], -1.0, 1.0, &mut rng);
        assert_quantization_agreement(&fp32.run_batch(&x), &plan.run_batch(&x), 0.8);
    }
}
