//! Compilation of a trained [`ResNet`] into a read-only execution plan.
//!
//! The plan is the serving-side twin of the trainable model: every layer is
//! lowered to the exact tensors and fused kernels inference needs, and the
//! result is immutable — one plan can be shared across worker threads behind
//! an `Arc` with no per-thread clones and no interior mutability.
//!
//! ## Numerics modes
//!
//! * [`Numerics::Exact`] keeps conv and batch norm as separate passes using
//!   the same kernel calls and the same per-element expressions as
//!   [`ResNet::forward_eval`], so plan output is **bit-identical** to the
//!   model's eval forward.
//! * [`Numerics::Fused`] folds each batch norm into the preceding
//!   convolution's weights and bias (`W'[o] = W[o]·γ[o]/√(var[o]+ε)`,
//!   `b'[o] = β[o] − γ[o]·mean[o]/√(var[o]+ε)`) and executes through the
//!   fused per-row bias/ReLU GEMM epilogues — one pass over each output
//!   instead of three. Folding reassociates float arithmetic, so outputs
//!   agree with eval forward only to within a small relative tolerance.
//!
//! ## Int8 weight storage
//!
//! With [`Precision::Int8`], every weight tensor is stored through
//! `graph::quantize` (symmetric per-tensor int8 + one f32 scale) and
//! dequantized back to f32 once at compile time ("dequant on load"): the
//! serialized footprint shrinks 4x while execution stays on the f32 kernels,
//! which is exactly the paper's deployment contract — int8 is a *storage*
//! format scored by the memory objective, not a separate arithmetic path.

use hydronas_graph::{quantize_tensor, Precision};
use hydronas_nn::ResNet;
use hydronas_tensor::{
    avg_pool2d_global, conv2d, conv2d_bias_act_prepacked, max_pool2d, pack_conv_weight,
    PackedConvWeight, Tensor,
};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Float-arithmetic contract of a compiled plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Numerics {
    /// Separate conv and batch-norm passes, bit-identical to
    /// [`ResNet::forward_eval`].
    Exact,
    /// Batch norm folded into conv weights and fused bias/ReLU epilogues;
    /// equal to eval forward only up to float re-rounding.
    Fused,
}

/// Compilation options for [`ExecutionPlan::compile`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanConfig {
    /// Weight storage precision ([`Precision::Int8`] dequantizes on load).
    pub precision: Precision,
    /// Kernel fusion / float-rounding contract.
    pub numerics: Numerics,
}

impl Default for PlanConfig {
    fn default() -> PlanConfig {
        PlanConfig {
            precision: Precision::Fp32,
            numerics: Numerics::Fused,
        }
    }
}

/// How one conv's batch norm is executed.
enum ConvKind {
    /// Post-conv batch norm applied as its own elementwise pass over the
    /// running statistics, replicating the layer expression bit-for-bit.
    /// Keeps the raw weight tensor because it must go through the same
    /// `conv2d` call `forward_eval` makes.
    Exact {
        weight: Tensor,
        gamma: Vec<f32>,
        beta: Vec<f32>,
        mean: Vec<f32>,
        inv_std: Vec<f32>,
    },
    /// Batch norm folded into the conv weight, which is stored already
    /// packed into GEMM panels ([`pack_conv_weight`]) — the per-call
    /// weight-packing pass is paid once here at compile time. `bias`
    /// rides the GEMM epilogue (per output-channel row).
    Fused {
        weight: PackedConvWeight,
        bias: Vec<f32>,
    },
}

/// One conv + batch-norm (+ optional ReLU) step of the plan.
struct ConvBnOp {
    stride: usize,
    padding: usize,
    relu: bool,
    kind: ConvKind,
}

impl ConvBnOp {
    fn apply(&self, input: &Tensor) -> Tensor {
        match &self.kind {
            ConvKind::Fused { weight, bias } => {
                conv2d_bias_act_prepacked(input, weight, bias, self.relu, self.stride, self.padding)
            }
            ConvKind::Exact {
                weight,
                gamma,
                beta,
                mean,
                inv_std,
            } => {
                let mut x = conv2d(input, weight, self.stride, self.padding);
                let dims = x.dims().to_vec();
                let (n, c, plane) = (dims[0], dims[1], dims[2] * dims[3]);
                let data = x.as_mut_slice();
                for b in 0..n {
                    for ch in 0..c {
                        let base = (b * c + ch) * plane;
                        let (mu, is, gg, bb) = (mean[ch], inv_std[ch], gamma[ch], beta[ch]);
                        for v in &mut data[base..base + plane] {
                            // Same expression as BatchNorm2d's eval branch;
                            // the trailing max is ReLU and keeps bit-identity
                            // because it reads the already-rounded value.
                            let xi = (*v - mu) * is;
                            let y = gg * xi + bb;
                            *v = if self.relu { y.max(0.0) } else { y };
                        }
                    }
                }
                x
            }
        }
    }
}

/// One residual block: `conv1(+relu) -> conv2`, plus optional 1x1
/// projection, then `relu(main + skip)`.
struct BlockOp {
    conv1: ConvBnOp,
    conv2: ConvBnOp,
    proj: Option<ConvBnOp>,
}

impl BlockOp {
    fn apply(&self, input: &Tensor) -> Tensor {
        let mut main = self.conv2.apply(&self.conv1.apply(input));
        let skip_owned;
        let skip = match &self.proj {
            Some(p) => {
                skip_owned = p.apply(input);
                &skip_owned
            }
            None => input,
        };
        // One in-place pass for add + ReLU instead of clone/add/map. Per
        // element this computes exactly `(main + skip).max(0.0)` — the
        // same rounding as forward_eval's separate passes, so both
        // numerics contracts survive the fusion.
        assert_eq!(main.dims(), skip.dims(), "residual shapes must match");
        for (m, s) in main.as_mut_slice().iter_mut().zip(skip.as_slice()) {
            *m = (*m + *s).max(0.0);
        }
        main
    }
}

/// Running tally of serialized weight bytes at the plan's precision.
struct SizeLedger {
    precision: Precision,
    bytes: u64,
}

impl SizeLedger {
    /// Stores `values` at the chosen precision, returning the execution
    /// (dequantized) f32 copy. Int8 costs 1 byte per scalar + one f32
    /// scale; f32 biases and BN vectors always cost 4 bytes per scalar.
    fn store_weights(&mut self, values: &[f32]) -> Vec<f32> {
        match self.precision {
            Precision::Fp32 => {
                self.bytes += 4 * values.len() as u64;
                values.to_vec()
            }
            Precision::Int8 => {
                self.bytes += values.len() as u64 + 4;
                quantize_tensor(values).dequantize()
            }
        }
    }

    fn store_f32(&mut self, values: &[f32]) {
        self.bytes += 4 * values.len() as u64;
    }
}

/// An immutable, compiled inference program for one trained model.
///
/// `&self` everywhere: the plan owns only read-only tensors, so it is
/// `Send + Sync` and one instance serves every engine worker.
pub struct ExecutionPlan {
    arch: hydronas_graph::ArchConfig,
    config: PlanConfig,
    stem: ConvBnOp,
    stem_pool: Option<(usize, usize, usize)>,
    blocks: Vec<BlockOp>,
    fc_weight: Tensor,
    fc_bias: Vec<f32>,
    weight_bytes: u64,
}

fn compile_conv_bn(
    conv: &hydronas_nn::Conv2d,
    bn: &hydronas_nn::BatchNorm2d,
    relu: bool,
    numerics: Numerics,
    ledger: &mut SizeLedger,
) -> ConvBnOp {
    let gamma = bn.gamma.value.as_slice();
    let beta = bn.beta.value.as_slice();
    let mean = bn.running_mean.as_slice();
    let inv_std: Vec<f32> = bn
        .running_var
        .as_slice()
        .iter()
        .map(|&v| 1.0 / (v + bn.eps).sqrt())
        .collect();
    let w = &conv.weight.value;
    let out_c = w.dims()[0];
    let per_out = w.numel() / out_c;
    match numerics {
        Numerics::Exact => {
            let stored = ledger.store_weights(w.as_slice());
            ledger.store_f32(gamma);
            ledger.store_f32(beta);
            ledger.store_f32(mean);
            ledger.store_f32(bn.running_var.as_slice());
            ConvBnOp {
                stride: conv.stride,
                padding: conv.padding,
                relu,
                kind: ConvKind::Exact {
                    weight: Tensor::from_vec(stored, w.dims()),
                    gamma: gamma.to_vec(),
                    beta: beta.to_vec(),
                    mean: mean.to_vec(),
                    inv_std,
                },
            }
        }
        Numerics::Fused => {
            // W'[o] = W[o] * γ[o]/√(var[o]+ε) ; b'[o] = β[o] − γ[o]·mean[o]/√(var[o]+ε)
            let mut folded = w.as_slice().to_vec();
            let mut bias = vec![0.0f32; out_c];
            for o in 0..out_c {
                let g = gamma[o] * inv_std[o];
                for v in &mut folded[o * per_out..(o + 1) * per_out] {
                    *v *= g;
                }
                bias[o] = beta[o] - g * mean[o];
            }
            let stored = ledger.store_weights(&folded);
            ledger.store_f32(&bias);
            ConvBnOp {
                stride: conv.stride,
                padding: conv.padding,
                relu,
                kind: ConvKind::Fused {
                    weight: pack_conv_weight(&Tensor::from_vec(stored, w.dims())),
                    bias,
                },
            }
        }
    }
}

impl ExecutionPlan {
    /// Compiles a trained model into an immutable plan.
    pub fn compile(model: &ResNet, config: &PlanConfig) -> ExecutionPlan {
        let mut ledger = SizeLedger {
            precision: config.precision,
            bytes: 0,
        };
        let stem = compile_conv_bn(
            model.stem_conv(),
            model.stem_bn(),
            true,
            config.numerics,
            &mut ledger,
        );
        let stem_pool = model.stem_pool().map(|p| (p.kernel, p.stride, p.padding));
        let blocks = model
            .blocks()
            .iter()
            .map(|b| BlockOp {
                conv1: compile_conv_bn(b.conv1(), b.bn1(), true, config.numerics, &mut ledger),
                conv2: compile_conv_bn(b.conv2(), b.bn2(), false, config.numerics, &mut ledger),
                proj: b.downsample().map(|(conv, bn)| {
                    compile_conv_bn(conv, bn, false, config.numerics, &mut ledger)
                }),
            })
            .collect();
        let fc_w = &model.fc().weight.value;
        let fc_bias = model.fc().bias.value.as_slice().to_vec();
        let stored_fc = ledger.store_weights(fc_w.as_slice());
        ledger.store_f32(&fc_bias);
        ExecutionPlan {
            arch: model.arch,
            config: *config,
            stem,
            stem_pool,
            blocks,
            fc_weight: Tensor::from_vec(stored_fc, fc_w.dims()),
            fc_bias,
            weight_bytes: ledger.bytes,
        }
    }

    /// The architecture this plan was compiled from.
    pub fn arch(&self) -> &hydronas_graph::ArchConfig {
        &self.arch
    }

    /// The compilation options used.
    pub fn config(&self) -> &PlanConfig {
        &self.config
    }

    /// Serialized weight footprint in bytes at the plan's precision
    /// (int8 payloads count 1 byte per scalar plus one f32 scale per
    /// tensor; biases and BN vectors stay f32).
    pub fn weight_bytes(&self) -> u64 {
        self.weight_bytes
    }

    /// Runs the plan over a batch: `[N, C, H, W] -> logits [N, classes]`.
    ///
    /// In [`Numerics::Fused`] mode every GEMM on this path goes through the
    /// always-packed `_batched` entries, so row `i` of a batched run is
    /// bit-identical to running sample `i` alone at any batch size. In
    /// [`Numerics::Exact`] mode the plan instead mirrors
    /// `ResNet::forward_eval` call-for-call, so its output is bit-identical
    /// to the model's eval forward at the same batch size.
    pub fn run_batch(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.shape().ndim(), 4, "plan input must be NCHW");
        assert_eq!(
            input.dims()[1],
            self.arch.in_channels,
            "input channel mismatch"
        );
        let mut x = self.stem.apply(input);
        if let Some((kernel, stride, padding)) = self.stem_pool {
            x = max_pool2d(&x, kernel, stride, padding).0;
        }
        for block in &self.blocks {
            x = block.apply(&x);
        }
        let pooled = avg_pool2d_global(&x);
        let (n, in_f) = (pooled.dims()[0], pooled.dims()[1]);
        let out_f = self.fc_weight.dims()[1];
        let mut out = Tensor::zeros(&[n, out_f]);
        match self.config.numerics {
            Numerics::Fused => hydronas_tensor::gemm_bias_batched(
                pooled.as_slice(),
                self.fc_weight.as_slice(),
                &self.fc_bias,
                out.as_mut_slice(),
                n,
                in_f,
                out_f,
            ),
            // Exact mode keeps the dispatching entry `forward_eval` uses so
            // the bits match the model's own FC call.
            Numerics::Exact => hydronas_tensor::gemm_bias(
                pooled.as_slice(),
                self.fc_weight.as_slice(),
                &self.fc_bias,
                out.as_mut_slice(),
                n,
                in_f,
                out_f,
            ),
        }
        out
    }

    /// Runs one `[C, H, W]` sample and returns its logits.
    pub fn run_single(&self, input: &Tensor) -> Vec<f32> {
        assert_eq!(input.shape().ndim(), 3, "single input must be CHW");
        let dims = input.dims();
        let batched = Tensor::from_vec(input.as_slice().to_vec(), &[1, dims[0], dims[1], dims[2]]);
        self.run_batch(&batched).as_slice().to_vec()
    }

    /// Runs the plan like [`run_batch`](Self::run_batch) while timing
    /// every layer, returning the logits (bit-identical to `run_batch`)
    /// plus a [`LayerProfile`] with per-layer wall time, FLOPs, bytes,
    /// and share of the forward pass.
    ///
    /// FLOPs and bytes come from the tensor op-accounting counters, so
    /// they need a telemetry session: if none is active this opens a
    /// private one for the duration of the call (which, like any
    /// session, **clears previously recorded telemetry data**). Counts
    /// are best-effort per op coverage — fused conv kernels report
    /// FLOPs but not bytes, pooling reports bytes but not FLOPs.
    pub fn profile_batch(&self, input: &Tensor) -> (Tensor, LayerProfile) {
        assert_eq!(input.shape().ndim(), 4, "plan input must be NCHW");
        assert_eq!(
            input.dims()[1],
            self.arch.in_channels,
            "input channel mismatch"
        );
        let mut prof = Profiler::new();
        let mut x = prof.step("stem", || self.stem.apply(input));
        if let Some((kernel, stride, padding)) = self.stem_pool {
            x = prof.step("stem.pool", || max_pool2d(&x, kernel, stride, padding).0);
        }
        for (idx, block) in self.blocks.iter().enumerate() {
            // Mirrors `BlockOp::apply` op-for-op (conv1 → conv2 →
            // projection → in-place add+ReLU) so the result stays
            // bit-identical to the unprofiled path.
            let block_in = x;
            let c1 = prof.step(&format!("block{idx}.conv1"), || {
                block.conv1.apply(&block_in)
            });
            let mut main = prof.step(&format!("block{idx}.conv2"), || block.conv2.apply(&c1));
            let skip_owned = block
                .proj
                .as_ref()
                .map(|p| prof.step(&format!("block{idx}.proj"), || p.apply(&block_in)));
            let skip = skip_owned.as_ref().unwrap_or(&block_in);
            prof.step(&format!("block{idx}.add_relu"), || {
                assert_eq!(main.dims(), skip.dims(), "residual shapes must match");
                for (m, s) in main.as_mut_slice().iter_mut().zip(skip.as_slice()) {
                    *m = (*m + *s).max(0.0);
                }
            });
            x = main;
        }
        let pooled = prof.step("global_avg_pool", || avg_pool2d_global(&x));
        let (n, in_f) = (pooled.dims()[0], pooled.dims()[1]);
        let out_f = self.fc_weight.dims()[1];
        let out = prof.step("fc", || {
            let mut out = Tensor::zeros(&[n, out_f]);
            match self.config.numerics {
                Numerics::Fused => hydronas_tensor::gemm_bias_batched(
                    pooled.as_slice(),
                    self.fc_weight.as_slice(),
                    &self.fc_bias,
                    out.as_mut_slice(),
                    n,
                    in_f,
                    out_f,
                ),
                Numerics::Exact => hydronas_tensor::gemm_bias(
                    pooled.as_slice(),
                    self.fc_weight.as_slice(),
                    &self.fc_bias,
                    out.as_mut_slice(),
                    n,
                    in_f,
                    out_f,
                ),
            }
            out
        });
        (out, prof.finish(n))
    }
}

/// Cost of one profiled layer (see [`ExecutionPlan::profile_batch`]).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LayerCost {
    /// Layer label, e.g. `"stem"`, `"block2.conv1"`, `"fc"`.
    pub name: String,
    /// Wall-clock time spent in this layer, milliseconds (wall field).
    pub wall_ms: f64,
    /// FLOPs attributed by the tensor op-accounting counters.
    pub flops: u64,
    /// Bytes moved per the op-accounting counters (0 where an op does
    /// not report bytes, e.g. fused conv kernels).
    pub bytes: u64,
    /// Share of the whole forward pass's wall time, percent.
    pub pct: f64,
}

/// Per-layer cost table for one profiled forward pass.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LayerProfile {
    /// Batch size the profiled pass ran at.
    pub batch: usize,
    /// Whole forward pass wall time, milliseconds (wall field).
    pub total_wall_ms: f64,
    /// Layers in execution order.
    pub layers: Vec<LayerCost>,
}

/// Times closures and snapshots op-accounting counter deltas around
/// them. Holds a private telemetry session when the caller had none, so
/// FLOP/byte counters are live either way.
struct Profiler {
    _session: Option<hydronas_telemetry::Session>,
    layers: Vec<LayerCost>,
}

impl Profiler {
    fn new() -> Profiler {
        let session = if hydronas_telemetry::enabled() {
            None
        } else {
            Some(hydronas_telemetry::session())
        };
        Profiler {
            _session: session,
            layers: Vec::new(),
        }
    }

    fn step<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let flops_before = hydronas_telemetry::counter_suffix_sum(".flops");
        let bytes_before = hydronas_telemetry::counter_suffix_sum(".bytes");
        let start = Instant::now();
        let out = f();
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        self.layers.push(LayerCost {
            name: name.to_string(),
            wall_ms,
            flops: hydronas_telemetry::counter_suffix_sum(".flops").saturating_sub(flops_before),
            bytes: hydronas_telemetry::counter_suffix_sum(".bytes").saturating_sub(bytes_before),
            pct: 0.0,
        });
        out
    }

    fn finish(mut self, batch: usize) -> LayerProfile {
        let total_wall_ms: f64 = self.layers.iter().map(|l| l.wall_ms).sum();
        if total_wall_ms > 0.0 {
            for layer in &mut self.layers {
                layer.pct = layer.wall_ms * 100.0 / total_wall_ms;
            }
        }
        LayerProfile {
            batch,
            total_wall_ms,
            layers: self.layers,
        }
    }
}
