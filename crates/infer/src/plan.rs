//! Compilation of a trained [`ResNet`] into a read-only execution plan.
//!
//! The plan is the serving-side twin of the trainable model: every layer is
//! lowered to the exact tensors and fused kernels inference needs, and the
//! result is immutable — one plan can be shared across worker threads behind
//! an `Arc` with no per-thread clones and no interior mutability.
//!
//! Plans are built through the typed [`PlanBuilder`]
//! (`ExecutionPlan::builder(&model)…build()?`); the old
//! [`ExecutionPlan::compile`] entry survives as a deprecated shim.
//!
//! ## Numerics modes
//!
//! * [`Numerics::Exact`] keeps conv and batch norm as separate passes using
//!   the same kernel calls and the same per-element expressions as
//!   [`ResNet::forward_eval`], so plan output is **bit-identical** to the
//!   model's eval forward.
//! * [`Numerics::Fused`] folds each batch norm into the preceding
//!   convolution's weights and bias (`W'[o] = W[o]·γ[o]/√(var[o]+ε)`,
//!   `b'[o] = β[o] − γ[o]·mean[o]/√(var[o]+ε)`) and executes through the
//!   fused per-row bias/ReLU GEMM epilogues — one pass over each output
//!   instead of three. Folding reassociates float arithmetic, so outputs
//!   agree with eval forward only to within a small relative tolerance.
//! * [`Numerics::QuantizedInt8`] folds batch norms the same way, then
//!   quantizes every conv/FC weight to int8 (per-channel or per-tensor
//!   symmetric) and fixes one static input scale per layer from a
//!   calibration batch. At run time convs and the FC execute in pure
//!   i8×i8→i32 arithmetic with a fused requantize+bias+ReLU epilogue
//!   (`acc_i32 × (w_scale·in_scale) + bias`); activations travel between
//!   layers as f32 and are re-quantized at each layer's static scale.
//!   There is **no dequant-on-load**: the stored weights are the bytes the
//!   kernels read. Scales are fixed at build time — never derived from the
//!   batch being served — so quantized output keeps the same
//!   batch-composition invariance as the f32 paths, and the integer
//!   accumulation makes it bit-identical at any thread count.
//!
//! ## Int8 weight storage (`Precision::Int8` + f32 numerics)
//!
//! With [`Precision::Int8`] under `Exact`/`Fused` numerics, weight tensors
//! are stored through `graph::quantize` (symmetric per-tensor int8 + one
//! f32 scale) and dequantized back to f32 once at compile time ("dequant on
//! load"): the serialized footprint shrinks 4x while execution stays on the
//! f32 kernels. [`Numerics::QuantizedInt8`] supersedes this for serving —
//! it keeps the 4x footprint *and* runs integer kernels.

use hydronas_graph::{
    quantize_per_channel, quantize_tensor, ActivationObserver, CalibrationMethod, Precision,
};
use hydronas_nn::ResNet;
use hydronas_tensor::{
    avg_pool2d_global, conv2d, conv2d_bias_act, conv2d_bias_act_prepacked, conv2d_q8, conv_out_dim,
    max_pool2d, pack_conv_weight, qgemm_nt_col_scaled, quantize_slice_i8, PackedConvWeight,
    QuantizedConvWeight, Tensor,
};
use serde::{Deserialize, Serialize};
use std::time::Instant;

use crate::engine::InferError;

/// Float-arithmetic contract of a compiled plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Numerics {
    /// Separate conv and batch-norm passes, bit-identical to
    /// [`ResNet::forward_eval`].
    Exact,
    /// Batch norm folded into conv weights and fused bias/ReLU epilogues;
    /// equal to eval forward only up to float re-rounding.
    Fused,
    /// True int8 execution: BN-folded weights quantized to i8, static
    /// calibrated activation scales, conv/FC running on i8×i8→i32 kernels
    /// with fused requantization. Requires a calibrated
    /// [`QuantizationScheme`] via [`PlanBuilder::quantization`].
    QuantizedInt8,
}

/// Compilation options for the deprecated [`ExecutionPlan::compile`] entry;
/// also readable back from any plan via [`ExecutionPlan::config`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanConfig {
    /// Weight storage precision ([`Precision::Int8`] dequantizes on load
    /// under f32 numerics; reported as `Int8` for quantized plans).
    pub precision: Precision,
    /// Kernel fusion / float-rounding contract.
    pub numerics: Numerics,
}

impl Default for PlanConfig {
    fn default() -> PlanConfig {
        PlanConfig {
            precision: Precision::Fp32,
            numerics: Numerics::Fused,
        }
    }
}

/// Weight-scale granularity of a [`QuantizationScheme`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Granularity {
    PerChannel,
    PerTensor,
}

/// How a [`Numerics::QuantizedInt8`] plan quantizes weights and calibrates
/// activation scales.
///
/// Construct with [`per_channel`](Self::per_channel) (one weight scale per
/// output channel — the right default once batch norm is folded in, which
/// stretches channel magnitudes unevenly) or
/// [`per_tensor`](Self::per_tensor) (one scale per weight tensor), then
/// attach a calibration batch:
///
/// ```ignore
/// QuantizationScheme::per_channel().calibrate(CalibrationMethod::MinMax, &batch)
/// ```
#[derive(Clone, Debug)]
pub struct QuantizationScheme {
    granularity: Granularity,
    method: Option<CalibrationMethod>,
    calibration: Option<Tensor>,
}

impl QuantizationScheme {
    /// Per-output-channel symmetric weight scales.
    pub fn per_channel() -> QuantizationScheme {
        QuantizationScheme {
            granularity: Granularity::PerChannel,
            method: None,
            calibration: None,
        }
    }

    /// One symmetric weight scale per tensor. Cheaper metadata, coarser
    /// resolution — see DESIGN.md for the trade-off.
    pub fn per_tensor() -> QuantizationScheme {
        QuantizationScheme {
            granularity: Granularity::PerTensor,
            method: None,
            calibration: None,
        }
    }

    /// Attaches the activation-calibration method and the NCHW batch the
    /// observers run over. The batch fixes every layer's static input
    /// scale at build time; serving never derives scales from live data.
    pub fn calibrate(mut self, method: CalibrationMethod, batch: &Tensor) -> QuantizationScheme {
        self.method = Some(method);
        self.calibration = Some(batch.clone());
        self
    }
}

/// Typed builder for [`ExecutionPlan`] — see [`ExecutionPlan::builder`].
///
/// Invalid combinations surface as
/// [`InferError::InvalidQuantization`] from [`build`](Self::build) instead
/// of panicking mid-compile.
pub struct PlanBuilder<'m> {
    model: &'m ResNet,
    precision: Precision,
    numerics: Numerics,
    quantization: Option<QuantizationScheme>,
}

impl<'m> PlanBuilder<'m> {
    /// Selects the numerics contract (default [`Numerics::Fused`]).
    pub fn numerics(mut self, numerics: Numerics) -> PlanBuilder<'m> {
        self.numerics = numerics;
        self
    }

    /// Selects the weight *storage* precision for f32 numerics modes
    /// (default [`Precision::Fp32`]). Ignored under
    /// [`Numerics::QuantizedInt8`], which is int8 storage by construction.
    pub fn precision(mut self, precision: Precision) -> PlanBuilder<'m> {
        self.precision = precision;
        self
    }

    /// Attaches the quantization scheme. Required for — and only valid
    /// with — [`Numerics::QuantizedInt8`].
    pub fn quantization(mut self, scheme: QuantizationScheme) -> PlanBuilder<'m> {
        self.quantization = Some(scheme);
        self
    }

    /// Compiles the plan, validating the quantization setup first.
    pub fn build(self) -> Result<ExecutionPlan, InferError> {
        let invalid = |reason: String| InferError::InvalidQuantization { reason };
        match self.numerics {
            Numerics::Exact | Numerics::Fused => {
                if self.quantization.is_some() {
                    return Err(invalid(
                        "a QuantizationScheme only applies to Numerics::QuantizedInt8; \
                         drop .quantization(..) or switch numerics"
                            .to_string(),
                    ));
                }
                Ok(compile_f32(
                    self.model,
                    &PlanConfig {
                        precision: self.precision,
                        numerics: self.numerics,
                    },
                ))
            }
            Numerics::QuantizedInt8 => {
                let scheme = self.quantization.ok_or_else(|| {
                    invalid(
                        "Numerics::QuantizedInt8 needs a QuantizationScheme; \
                         call .quantization(QuantizationScheme::per_channel().calibrate(..))"
                            .to_string(),
                    )
                })?;
                let method = scheme.method.ok_or_else(|| {
                    invalid(
                        "QuantizationScheme has no calibration; \
                         call .calibrate(CalibrationMethod, &batch)"
                            .to_string(),
                    )
                })?;
                method.validate().map_err(invalid)?;
                let batch = scheme
                    .calibration
                    .expect("calibrate() always sets the batch");
                if batch.shape().ndim() != 4 {
                    return Err(invalid(format!(
                        "calibration batch must be NCHW, got {} dims",
                        batch.shape().ndim()
                    )));
                }
                if batch.dims()[0] == 0 {
                    return Err(invalid("calibration batch is empty".to_string()));
                }
                if batch.dims()[1] != self.model.arch.in_channels {
                    return Err(invalid(format!(
                        "calibration batch has {} channels but the model expects {}",
                        batch.dims()[1],
                        self.model.arch.in_channels
                    )));
                }
                compile_quantized(self.model, scheme.granularity, method, &batch)
            }
        }
    }
}

/// How one conv's batch norm is executed.
enum ConvKind {
    /// Post-conv batch norm applied as its own elementwise pass over the
    /// running statistics, replicating the layer expression bit-for-bit.
    /// Keeps the raw weight tensor because it must go through the same
    /// `conv2d` call `forward_eval` makes.
    Exact {
        weight: Tensor,
        gamma: Vec<f32>,
        beta: Vec<f32>,
        mean: Vec<f32>,
        inv_std: Vec<f32>,
    },
    /// Batch norm folded into the conv weight, which is stored already
    /// packed into GEMM panels ([`pack_conv_weight`]) — the per-call
    /// weight-packing pass is paid once here at compile time. `bias`
    /// rides the GEMM epilogue (per output-channel row).
    Fused {
        weight: PackedConvWeight,
        bias: Vec<f32>,
    },
    /// BN-folded weight quantized to int8; executes through
    /// [`conv2d_q8`]'s i8×i8→i32 kernel with the static calibrated
    /// `input_scale` and a fused requantize+bias(+ReLU) epilogue.
    Quantized {
        weight: QuantizedConvWeight,
        input_scale: f32,
        bias: Vec<f32>,
    },
}

/// One conv + batch-norm (+ optional ReLU) step of the plan.
struct ConvBnOp {
    stride: usize,
    padding: usize,
    relu: bool,
    kind: ConvKind,
}

impl ConvBnOp {
    fn apply(&self, input: &Tensor) -> Tensor {
        match &self.kind {
            ConvKind::Fused { weight, bias } => {
                conv2d_bias_act_prepacked(input, weight, bias, self.relu, self.stride, self.padding)
            }
            ConvKind::Quantized {
                weight,
                input_scale,
                bias,
            } => conv2d_q8(
                input,
                weight,
                *input_scale,
                bias,
                self.relu,
                self.stride,
                self.padding,
            ),
            ConvKind::Exact {
                weight,
                gamma,
                beta,
                mean,
                inv_std,
            } => {
                let mut x = conv2d(input, weight, self.stride, self.padding);
                let dims = x.dims().to_vec();
                let (n, c, plane) = (dims[0], dims[1], dims[2] * dims[3]);
                let data = x.as_mut_slice();
                for b in 0..n {
                    for ch in 0..c {
                        let base = (b * c + ch) * plane;
                        let (mu, is, gg, bb) = (mean[ch], inv_std[ch], gamma[ch], beta[ch]);
                        for v in &mut data[base..base + plane] {
                            // Same expression as BatchNorm2d's eval branch;
                            // the trailing max is ReLU and keeps bit-identity
                            // because it reads the already-rounded value.
                            let xi = (*v - mu) * is;
                            let y = gg * xi + bb;
                            *v = if self.relu { y.max(0.0) } else { y };
                        }
                    }
                }
                x
            }
        }
    }

    /// `(out_c, in_c, kernel)` of this conv, whatever its storage.
    fn geometry(&self) -> (usize, usize, usize) {
        match &self.kind {
            ConvKind::Exact { weight, .. } => {
                let d = weight.dims();
                (d[0], d[1], d[2])
            }
            ConvKind::Fused { weight, .. } => (weight.out_c(), weight.in_c(), weight.kernel()),
            ConvKind::Quantized { weight, .. } => (weight.out_c(), weight.in_c(), weight.kernel()),
        }
    }

    fn is_quantized(&self) -> bool {
        matches!(self.kind, ConvKind::Quantized { .. })
    }
}

/// One residual block: `conv1(+relu) -> conv2`, plus optional 1x1
/// projection, then `relu(main + skip)`.
struct BlockOp {
    conv1: ConvBnOp,
    conv2: ConvBnOp,
    proj: Option<ConvBnOp>,
}

impl BlockOp {
    fn apply(&self, input: &Tensor) -> Tensor {
        let mut main = self.conv2.apply(&self.conv1.apply(input));
        let skip_owned;
        let skip = match &self.proj {
            Some(p) => {
                skip_owned = p.apply(input);
                &skip_owned
            }
            None => input,
        };
        // One in-place pass for add + ReLU instead of clone/add/map. Per
        // element this computes exactly `(main + skip).max(0.0)` — the
        // same rounding as forward_eval's separate passes, so both
        // numerics contracts survive the fusion.
        assert_eq!(main.dims(), skip.dims(), "residual shapes must match");
        for (m, s) in main.as_mut_slice().iter_mut().zip(skip.as_slice()) {
            *m = (*m + *s).max(0.0);
        }
        main
    }
}

/// The plan's fully-connected head.
enum FcOp {
    /// f32 weight `[in_f, out_f]` (the layout `forward_eval` multiplies).
    F32 { weight: Tensor, bias: Vec<f32> },
    /// Quantized transposed weight `[out_f, in_f]` for the NT int8 GEMM.
    /// `scales[j]` is the combined `w_scale[j] × input_scale` applied in
    /// the column-scaled epilogue.
    Quantized {
        wt: Vec<i8>,
        scales: Vec<f32>,
        input_scale: f32,
        in_f: usize,
        out_f: usize,
        bias: Vec<f32>,
    },
}

impl FcOp {
    fn out_features(&self) -> usize {
        match self {
            FcOp::F32 { weight, .. } => weight.dims()[1],
            FcOp::Quantized { out_f, .. } => *out_f,
        }
    }
}

/// Running tally of serialized weight bytes at the plan's precision.
struct SizeLedger {
    precision: Precision,
    bytes: u64,
}

impl SizeLedger {
    /// Stores `values` at the chosen precision, returning the execution
    /// (dequantized) f32 copy. Int8 costs 1 byte per scalar + one f32
    /// scale; f32 biases and BN vectors always cost 4 bytes per scalar.
    fn store_weights(&mut self, values: &[f32]) -> Vec<f32> {
        match self.precision {
            Precision::Fp32 => {
                self.bytes += 4 * values.len() as u64;
                values.to_vec()
            }
            Precision::Int8 => {
                self.bytes += values.len() as u64 + 4;
                quantize_tensor(values).dequantize()
            }
        }
    }

    /// Records a truly int8-stored tensor: 1 byte per scalar, one f32 per
    /// stored weight scale, plus one f32 for the layer's static input
    /// scale.
    fn store_int8(&mut self, scalars: usize, stored_scales: usize) {
        self.bytes += scalars as u64 + 4 * stored_scales as u64 + 4;
    }

    fn store_f32(&mut self, values: &[f32]) {
        self.bytes += 4 * values.len() as u64;
    }
}

/// An immutable, compiled inference program for one trained model.
///
/// `&self` everywhere: the plan owns only read-only tensors, so it is
/// `Send + Sync` and one instance serves every engine worker.
pub struct ExecutionPlan {
    arch: hydronas_graph::ArchConfig,
    config: PlanConfig,
    stem: ConvBnOp,
    stem_pool: Option<(usize, usize, usize)>,
    blocks: Vec<BlockOp>,
    fc: FcOp,
    weight_bytes: u64,
}

fn compile_conv_bn(
    conv: &hydronas_nn::Conv2d,
    bn: &hydronas_nn::BatchNorm2d,
    relu: bool,
    numerics: Numerics,
    ledger: &mut SizeLedger,
) -> ConvBnOp {
    let gamma = bn.gamma.value.as_slice();
    let beta = bn.beta.value.as_slice();
    let mean = bn.running_mean.as_slice();
    let inv_std: Vec<f32> = bn
        .running_var
        .as_slice()
        .iter()
        .map(|&v| 1.0 / (v + bn.eps).sqrt())
        .collect();
    let w = &conv.weight.value;
    match numerics {
        Numerics::Exact => {
            let stored = ledger.store_weights(w.as_slice());
            ledger.store_f32(gamma);
            ledger.store_f32(beta);
            ledger.store_f32(mean);
            ledger.store_f32(bn.running_var.as_slice());
            ConvBnOp {
                stride: conv.stride,
                padding: conv.padding,
                relu,
                kind: ConvKind::Exact {
                    weight: Tensor::from_vec(stored, w.dims()),
                    gamma: gamma.to_vec(),
                    beta: beta.to_vec(),
                    mean: mean.to_vec(),
                    inv_std,
                },
            }
        }
        Numerics::Fused => {
            let folded = fold_conv_bn(conv, bn, relu);
            let stored = ledger.store_weights(folded.weight.as_slice());
            ledger.store_f32(&folded.bias);
            ConvBnOp {
                stride: conv.stride,
                padding: conv.padding,
                relu,
                kind: ConvKind::Fused {
                    weight: pack_conv_weight(&Tensor::from_vec(stored, w.dims())),
                    bias: folded.bias,
                },
            }
        }
        Numerics::QuantizedInt8 => {
            unreachable!("quantized plans are compiled by compile_quantized")
        }
    }
}

/// One BN-folded conv held as plain f32 — the intermediate form the
/// quantized compile pipeline calibrates on before quantizing.
struct FoldedConv {
    weight: Tensor,
    bias: Vec<f32>,
    stride: usize,
    padding: usize,
    relu: bool,
}

impl FoldedConv {
    fn apply(&self, x: &Tensor) -> Tensor {
        conv2d_bias_act(
            x,
            &self.weight,
            &self.bias,
            self.relu,
            self.stride,
            self.padding,
        )
    }
}

/// Folds a batch norm into its preceding conv:
/// `W'[o] = W[o]·γ[o]/√(var[o]+ε)`, `b'[o] = β[o] − γ[o]·mean[o]/√(var[o]+ε)`.
fn fold_conv_bn(
    conv: &hydronas_nn::Conv2d,
    bn: &hydronas_nn::BatchNorm2d,
    relu: bool,
) -> FoldedConv {
    let gamma = bn.gamma.value.as_slice();
    let beta = bn.beta.value.as_slice();
    let mean = bn.running_mean.as_slice();
    let w = &conv.weight.value;
    let out_c = w.dims()[0];
    let per_out = w.numel() / out_c;
    let mut folded = w.as_slice().to_vec();
    let mut bias = vec![0.0f32; out_c];
    for o in 0..out_c {
        let inv_std = 1.0 / (bn.running_var.as_slice()[o] + bn.eps).sqrt();
        let g = gamma[o] * inv_std;
        for v in &mut folded[o * per_out..(o + 1) * per_out] {
            *v *= g;
        }
        bias[o] = beta[o] - g * mean[o];
    }
    FoldedConv {
        weight: Tensor::from_vec(folded, w.dims()),
        bias,
        stride: conv.stride,
        padding: conv.padding,
        relu,
    }
}

/// Quantizes one BN-folded conv with the calibrated `input_scale`.
fn quantize_folded(
    folded: FoldedConv,
    input_scale: f32,
    granularity: Granularity,
    ledger: &mut SizeLedger,
) -> ConvBnOp {
    let dims = folded.weight.dims().to_vec();
    let (out_c, in_c, kernel) = (dims[0], dims[1], dims[2]);
    let (values, scales, stored_scales) = match granularity {
        Granularity::PerChannel => {
            let q = quantize_per_channel(folded.weight.as_slice(), out_c);
            (q.values, q.scales, out_c)
        }
        Granularity::PerTensor => {
            let q = quantize_tensor(folded.weight.as_slice());
            (q.values, vec![q.scale; out_c], 1)
        }
    };
    ledger.store_int8(values.len(), stored_scales);
    ledger.store_f32(&folded.bias);
    ConvBnOp {
        stride: folded.stride,
        padding: folded.padding,
        relu: folded.relu,
        kind: ConvKind::Quantized {
            weight: QuantizedConvWeight::new(values, scales, out_c, in_c, kernel),
            input_scale,
            bias: folded.bias,
        },
    }
}

/// Compiles an f32 plan (`Exact`/`Fused`, optional int8 *storage*).
fn compile_f32(model: &ResNet, config: &PlanConfig) -> ExecutionPlan {
    let mut ledger = SizeLedger {
        precision: config.precision,
        bytes: 0,
    };
    let stem = compile_conv_bn(
        model.stem_conv(),
        model.stem_bn(),
        true,
        config.numerics,
        &mut ledger,
    );
    let stem_pool = model.stem_pool().map(|p| (p.kernel, p.stride, p.padding));
    let blocks = model
        .blocks()
        .iter()
        .map(|b| BlockOp {
            conv1: compile_conv_bn(b.conv1(), b.bn1(), true, config.numerics, &mut ledger),
            conv2: compile_conv_bn(b.conv2(), b.bn2(), false, config.numerics, &mut ledger),
            proj: b
                .downsample()
                .map(|(conv, bn)| compile_conv_bn(conv, bn, false, config.numerics, &mut ledger)),
        })
        .collect();
    let fc_w = &model.fc().weight.value;
    let fc_bias = model.fc().bias.value.as_slice().to_vec();
    let stored_fc = ledger.store_weights(fc_w.as_slice());
    ledger.store_f32(&fc_bias);
    ExecutionPlan {
        arch: model.arch,
        config: *config,
        stem,
        stem_pool,
        blocks,
        fc: FcOp::F32 {
            weight: Tensor::from_vec(stored_fc, fc_w.dims()),
            bias: fc_bias,
        },
        weight_bytes: ledger.bytes,
    }
}

/// Compiles a [`Numerics::QuantizedInt8`] plan: fold every BN, run the
/// calibration batch through the folded f32 network **in exact runtime op
/// order**, observing each quantization point with an
/// [`ActivationObserver`], then quantize weights per the scheme.
///
/// The observation order matters for nothing but clarity — each observer
/// sees exactly the tensor its layer will quantize at serve time, and the
/// observers themselves are order-invariant (see `graph::quantize`).
fn compile_quantized(
    model: &ResNet,
    granularity: Granularity,
    method: CalibrationMethod,
    batch: &Tensor,
) -> Result<ExecutionPlan, InferError> {
    // 1. Fold every conv+BN to plain f32.
    let stem_f = fold_conv_bn(model.stem_conv(), model.stem_bn(), true);
    let stem_pool = model.stem_pool().map(|p| (p.kernel, p.stride, p.padding));
    let blocks_f: Vec<(FoldedConv, FoldedConv, Option<FoldedConv>)> = model
        .blocks()
        .iter()
        .map(|b| {
            (
                fold_conv_bn(b.conv1(), b.bn1(), true),
                fold_conv_bn(b.conv2(), b.bn2(), false),
                b.downsample()
                    .map(|(conv, bn)| fold_conv_bn(conv, bn, false)),
            )
        })
        .collect();

    // 2. Calibration walk over the folded f32 network.
    let mut stem_obs = ActivationObserver::new(method);
    stem_obs.observe(batch.as_slice());
    let mut x = stem_f.apply(batch);
    if let Some((kernel, stride, padding)) = stem_pool {
        x = max_pool2d(&x, kernel, stride, padding).0;
    }
    // (conv1_scale, conv2_scale, proj_scale) per block.
    let mut block_scales: Vec<(f32, f32, Option<f32>)> = Vec::with_capacity(blocks_f.len());
    for (c1, c2, proj) in &blocks_f {
        let mut o1 = ActivationObserver::new(method);
        o1.observe(x.as_slice());
        let y1 = c1.apply(&x);
        let mut o2 = ActivationObserver::new(method);
        o2.observe(y1.as_slice());
        let mut main = c2.apply(&y1);
        let proj_scale = proj.as_ref().map(|p| {
            // The projection reads the same block input conv1 reads, but
            // gets its own observer so a future per-layer method tweak
            // cannot silently couple the two.
            let mut op = ActivationObserver::new(method);
            op.observe(x.as_slice());
            let s = op.scale();
            x = p.apply(&x);
            s
        });
        for (m, s) in main.as_mut_slice().iter_mut().zip(x.as_slice()) {
            *m = (*m + *s).max(0.0);
        }
        block_scales.push((o1.scale(), o2.scale(), proj_scale));
        x = main;
    }
    let pooled = avg_pool2d_global(&x);
    let mut fc_obs = ActivationObserver::new(method);
    fc_obs.observe(pooled.as_slice());

    // 3. Quantize weights with the calibrated input scales.
    let mut ledger = SizeLedger {
        precision: Precision::Int8,
        bytes: 0,
    };
    let stem = quantize_folded(stem_f, stem_obs.scale(), granularity, &mut ledger);
    let blocks: Vec<BlockOp> = blocks_f
        .into_iter()
        .zip(block_scales)
        .map(|((c1, c2, proj), (s1, s2, sp))| BlockOp {
            conv1: quantize_folded(c1, s1, granularity, &mut ledger),
            conv2: quantize_folded(c2, s2, granularity, &mut ledger),
            proj: proj.map(|p| {
                quantize_folded(
                    p,
                    sp.expect("projection always calibrated"),
                    granularity,
                    &mut ledger,
                )
            }),
        })
        .collect();

    // FC: transpose [in_f, out_f] -> [out_f, in_f] so each output feature
    // is one contiguous NT-GEMM row with its own channel scale.
    let fc_w = &model.fc().weight.value;
    let (in_f, out_f) = (fc_w.dims()[0], fc_w.dims()[1]);
    let mut wt = vec![0.0f32; in_f * out_f];
    let w = fc_w.as_slice();
    for i in 0..in_f {
        for o in 0..out_f {
            wt[o * in_f + i] = w[i * out_f + o];
        }
    }
    let input_scale = fc_obs.scale();
    let (values, w_scales, stored_scales) = match granularity {
        Granularity::PerChannel => {
            let q = quantize_per_channel(&wt, out_f);
            (q.values, q.scales, out_f)
        }
        Granularity::PerTensor => {
            let q = quantize_tensor(&wt);
            (q.values, vec![q.scale; out_f], 1)
        }
    };
    let combined: Vec<f32> = w_scales.iter().map(|s| s * input_scale).collect();
    let fc_bias = model.fc().bias.value.as_slice().to_vec();
    ledger.store_int8(values.len(), stored_scales);
    ledger.store_f32(&fc_bias);

    Ok(ExecutionPlan {
        arch: model.arch,
        config: PlanConfig {
            precision: Precision::Int8,
            numerics: Numerics::QuantizedInt8,
        },
        stem,
        stem_pool,
        blocks,
        fc: FcOp::Quantized {
            wt: values,
            scales: combined,
            input_scale,
            in_f,
            out_f,
            bias: fc_bias,
        },
        weight_bytes: ledger.bytes,
    })
}

impl ExecutionPlan {
    /// Starts a typed plan build:
    ///
    /// ```ignore
    /// let plan = ExecutionPlan::builder(&model)
    ///     .numerics(Numerics::QuantizedInt8)
    ///     .quantization(
    ///         QuantizationScheme::per_channel()
    ///             .calibrate(CalibrationMethod::MinMax, &calibration_batch),
    ///     )
    ///     .build()?;
    /// ```
    ///
    /// Defaults match [`PlanConfig::default`]: [`Numerics::Fused`] at
    /// [`Precision::Fp32`].
    pub fn builder(model: &ResNet) -> PlanBuilder<'_> {
        PlanBuilder {
            model,
            precision: Precision::Fp32,
            numerics: Numerics::Fused,
            quantization: None,
        }
    }

    /// Compiles a trained model into an immutable plan.
    ///
    /// Deprecated shim over [`ExecutionPlan::builder`]. Panics if `config`
    /// asks for [`Numerics::QuantizedInt8`] — the quantized mode needs a
    /// calibrated [`QuantizationScheme`], which only the builder carries.
    #[deprecated(note = "use ExecutionPlan::builder(&model)…build()")]
    pub fn compile(model: &ResNet, config: &PlanConfig) -> ExecutionPlan {
        ExecutionPlan::builder(model)
            .precision(config.precision)
            .numerics(config.numerics)
            .build()
            .expect("compile() cannot express QuantizedInt8; use ExecutionPlan::builder")
    }

    /// The architecture this plan was compiled from.
    pub fn arch(&self) -> &hydronas_graph::ArchConfig {
        &self.arch
    }

    /// The compilation options used.
    pub fn config(&self) -> &PlanConfig {
        &self.config
    }

    /// Serialized weight footprint in bytes at the plan's precision.
    ///
    /// For quantized plans this is the true serving footprint: 1 byte per
    /// weight scalar, one f32 per stored weight scale (per output channel
    /// or per tensor), one f32 static input scale per layer, and f32
    /// biases. For f32 plans with [`Precision::Int8`] storage it counts
    /// the serialized int8 payload (execution still reads dequantized
    /// f32).
    pub fn weight_bytes(&self) -> u64 {
        self.weight_bytes
    }

    /// Peak transient activation bytes for one forward pass at the given
    /// batch size and square input extent — the serving-memory half of the
    /// Pareto trade-off next to [`weight_bytes`](Self::weight_bytes).
    ///
    /// Counts, per layer, the resident input + im2col column matrix +
    /// output for convs (columns are 1 byte/element on the quantized path,
    /// 4 on f32 paths) and input + quantized staging + output for the FC,
    /// and returns the largest. Pooling and the residual add are reads
    /// over already-counted buffers and never dominate.
    pub fn activation_bytes(&self, batch: usize, input_hw: usize) -> u64 {
        let conv_bytes =
            |op: &ConvBnOp, h: usize, w: usize| -> Option<(u64, usize, usize, usize)> {
                let (out_c, in_c, kernel) = op.geometry();
                let oh = conv_out_dim(h, kernel, op.stride, op.padding)?;
                let ow = conv_out_dim(w, kernel, op.stride, op.padding)?;
                let col_elem: u64 = if op.is_quantized() { 1 } else { 4 };
                let input = 4 * (batch * in_c * h * w) as u64;
                let col = col_elem * (batch * in_c * kernel * kernel * oh * ow) as u64;
                let output = 4 * (batch * out_c * oh * ow) as u64;
                Some((input + col + output, out_c, oh, ow))
            };
        let mut peak = 0u64;
        let (mut h, mut w) = (input_hw, input_hw);
        let Some((stem_bytes, mut c, mut oh, mut ow)) = conv_bytes(&self.stem, h, w) else {
            return 0;
        };
        peak = peak.max(stem_bytes);
        if let Some((kernel, stride, padding)) = self.stem_pool {
            let Some(ph) = conv_out_dim(oh, kernel, stride, padding) else {
                return peak;
            };
            let Some(pw) = conv_out_dim(ow, kernel, stride, padding) else {
                return peak;
            };
            (oh, ow) = (ph, pw);
        }
        (h, w) = (oh, ow);
        for block in &self.blocks {
            let Some((b1, _c1_out, h1, w1)) = conv_bytes(&block.conv1, h, w) else {
                return peak;
            };
            peak = peak.max(b1);
            let Some((b2, c2_out, h2, w2)) = conv_bytes(&block.conv2, h1, w1) else {
                return peak;
            };
            peak = peak.max(b2);
            if let Some(proj) = &block.proj {
                if let Some((bp, ..)) = conv_bytes(proj, h, w) {
                    peak = peak.max(bp);
                }
            }
            (c, h, w) = (c2_out, h2, w2);
        }
        let in_f = c;
        let out_f = self.fc.out_features();
        let fc_staging: u64 = match &self.fc {
            FcOp::F32 { .. } => 0,
            FcOp::Quantized { .. } => (batch * in_f) as u64,
        };
        let fc_bytes = 4 * (batch * in_f) as u64 + fc_staging + 4 * (batch * out_f) as u64;
        peak.max(fc_bytes)
    }

    /// The shared FC head: `pooled [N, in_f] -> logits [N, out_f]`.
    fn fc_forward(&self, pooled: &Tensor) -> Tensor {
        let (n, in_f) = (pooled.dims()[0], pooled.dims()[1]);
        match &self.fc {
            FcOp::F32 { weight, bias } => {
                let out_f = weight.dims()[1];
                let mut out = Tensor::zeros(&[n, out_f]);
                match self.config.numerics {
                    Numerics::Fused => hydronas_tensor::gemm_bias_batched(
                        pooled.as_slice(),
                        weight.as_slice(),
                        bias,
                        out.as_mut_slice(),
                        n,
                        in_f,
                        out_f,
                    ),
                    // Exact mode keeps the dispatching entry `forward_eval`
                    // uses so the bits match the model's own FC call.
                    Numerics::Exact => hydronas_tensor::gemm_bias(
                        pooled.as_slice(),
                        weight.as_slice(),
                        bias,
                        out.as_mut_slice(),
                        n,
                        in_f,
                        out_f,
                    ),
                    Numerics::QuantizedInt8 => {
                        unreachable!("quantized plans hold FcOp::Quantized")
                    }
                }
                out
            }
            FcOp::Quantized {
                wt,
                scales,
                input_scale,
                in_f: fin,
                out_f,
                bias,
            } => {
                assert_eq!(in_f, *fin, "pooled feature width mismatch");
                let mut staged = vec![0i8; n * in_f];
                quantize_slice_i8(pooled.as_slice(), *input_scale, &mut staged);
                let mut out = Tensor::zeros(&[n, *out_f]);
                qgemm_nt_col_scaled(
                    &staged,
                    wt,
                    scales,
                    bias,
                    false,
                    out.as_mut_slice(),
                    n,
                    in_f,
                    *out_f,
                );
                out
            }
        }
    }

    /// Runs the plan over a batch: `[N, C, H, W] -> logits [N, classes]`.
    ///
    /// In [`Numerics::Fused`] mode every GEMM on this path goes through the
    /// always-packed `_batched` entries, so row `i` of a batched run is
    /// bit-identical to running sample `i` alone at any batch size. In
    /// [`Numerics::Exact`] mode the plan instead mirrors
    /// `ResNet::forward_eval` call-for-call, so its output is bit-identical
    /// to the model's eval forward at the same batch size.
    /// [`Numerics::QuantizedInt8`] keeps both properties at once: scales
    /// are static and per-sample, and the integer kernels are exact, so
    /// batched rows match single runs bit-for-bit at any thread count.
    pub fn run_batch(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.shape().ndim(), 4, "plan input must be NCHW");
        assert_eq!(
            input.dims()[1],
            self.arch.in_channels,
            "input channel mismatch"
        );
        let mut x = self.stem.apply(input);
        if let Some((kernel, stride, padding)) = self.stem_pool {
            x = max_pool2d(&x, kernel, stride, padding).0;
        }
        for block in &self.blocks {
            x = block.apply(&x);
        }
        let pooled = avg_pool2d_global(&x);
        self.fc_forward(&pooled)
    }

    /// Runs one `[C, H, W]` sample and returns its logits.
    pub fn run_single(&self, input: &Tensor) -> Vec<f32> {
        assert_eq!(input.shape().ndim(), 3, "single input must be CHW");
        let dims = input.dims();
        let batched = Tensor::from_vec(input.as_slice().to_vec(), &[1, dims[0], dims[1], dims[2]]);
        self.run_batch(&batched).as_slice().to_vec()
    }

    /// Runs the plan like [`run_batch`](Self::run_batch) while timing
    /// every layer, returning the logits (bit-identical to `run_batch`)
    /// plus a [`LayerProfile`] with per-layer wall time, FLOPs, bytes,
    /// and share of the forward pass.
    ///
    /// FLOPs and bytes come from the tensor op-accounting counters, so
    /// they need a telemetry session: if none is active this opens a
    /// private one for the duration of the call (which, like any
    /// session, **clears previously recorded telemetry data**). Counts
    /// are best-effort per op coverage — fused conv kernels report
    /// FLOPs but not bytes, pooling reports bytes but not FLOPs.
    pub fn profile_batch(&self, input: &Tensor) -> (Tensor, LayerProfile) {
        assert_eq!(input.shape().ndim(), 4, "plan input must be NCHW");
        assert_eq!(
            input.dims()[1],
            self.arch.in_channels,
            "input channel mismatch"
        );
        let mut prof = Profiler::new();
        let mut x = prof.step("stem", || self.stem.apply(input));
        if let Some((kernel, stride, padding)) = self.stem_pool {
            x = prof.step("stem.pool", || max_pool2d(&x, kernel, stride, padding).0);
        }
        for (idx, block) in self.blocks.iter().enumerate() {
            // Mirrors `BlockOp::apply` op-for-op (conv1 → conv2 →
            // projection → in-place add+ReLU) so the result stays
            // bit-identical to the unprofiled path.
            let block_in = x;
            let c1 = prof.step(&format!("block{idx}.conv1"), || {
                block.conv1.apply(&block_in)
            });
            let mut main = prof.step(&format!("block{idx}.conv2"), || block.conv2.apply(&c1));
            let skip_owned = block
                .proj
                .as_ref()
                .map(|p| prof.step(&format!("block{idx}.proj"), || p.apply(&block_in)));
            let skip = skip_owned.as_ref().unwrap_or(&block_in);
            prof.step(&format!("block{idx}.add_relu"), || {
                assert_eq!(main.dims(), skip.dims(), "residual shapes must match");
                for (m, s) in main.as_mut_slice().iter_mut().zip(skip.as_slice()) {
                    *m = (*m + *s).max(0.0);
                }
            });
            x = main;
        }
        let pooled = prof.step("global_avg_pool", || avg_pool2d_global(&x));
        let out = prof.step("fc", || self.fc_forward(&pooled));
        let n = pooled.dims()[0];
        (out, prof.finish(n))
    }
}

/// Cost of one profiled layer (see [`ExecutionPlan::profile_batch`]).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LayerCost {
    /// Layer label, e.g. `"stem"`, `"block2.conv1"`, `"fc"`.
    pub name: String,
    /// Wall-clock time spent in this layer, milliseconds (wall field).
    pub wall_ms: f64,
    /// FLOPs attributed by the tensor op-accounting counters.
    pub flops: u64,
    /// Bytes moved per the op-accounting counters (0 where an op does
    /// not report bytes, e.g. fused conv kernels).
    pub bytes: u64,
    /// Share of the whole forward pass's wall time, percent.
    pub pct: f64,
}

/// Per-layer cost table for one profiled forward pass.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LayerProfile {
    /// Batch size the profiled pass ran at.
    pub batch: usize,
    /// Whole forward pass wall time, milliseconds (wall field).
    pub total_wall_ms: f64,
    /// Layers in execution order.
    pub layers: Vec<LayerCost>,
}

/// Times closures and snapshots op-accounting counter deltas around
/// them. Holds a private telemetry session when the caller had none, so
/// FLOP/byte counters are live either way.
struct Profiler {
    _session: Option<hydronas_telemetry::Session>,
    layers: Vec<LayerCost>,
}

impl Profiler {
    fn new() -> Profiler {
        let session = if hydronas_telemetry::enabled() {
            None
        } else {
            Some(hydronas_telemetry::session())
        };
        Profiler {
            _session: session,
            layers: Vec::new(),
        }
    }

    fn step<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let flops_before = hydronas_telemetry::counter_suffix_sum(".flops");
        let bytes_before = hydronas_telemetry::counter_suffix_sum(".bytes");
        let start = Instant::now();
        let out = f();
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        self.layers.push(LayerCost {
            name: name.to_string(),
            wall_ms,
            flops: hydronas_telemetry::counter_suffix_sum(".flops").saturating_sub(flops_before),
            bytes: hydronas_telemetry::counter_suffix_sum(".bytes").saturating_sub(bytes_before),
            pct: 0.0,
        });
        out
    }

    fn finish(mut self, batch: usize) -> LayerProfile {
        let total_wall_ms: f64 = self.layers.iter().map(|l| l.wall_ms).sum();
        if total_wall_ms > 0.0 {
            for layer in &mut self.layers {
                layer.pct = layer.wall_ms * 100.0 / total_wall_ms;
            }
        }
        LayerProfile {
            batch,
            total_wall_ms,
            layers: self.layers,
        }
    }
}
