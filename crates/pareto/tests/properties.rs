//! Property-based tests for the Pareto machinery.

use hydronas_pareto::{
    dominates, hypervolume_2d, min_max_normalize, non_dominated_sort, pareto_front, Objective,
    Point,
};
use proptest::prelude::*;

const MM3: [Objective; 3] = [
    Objective::Maximize,
    Objective::Minimize,
    Objective::Minimize,
];

fn points_strategy(n: usize) -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0, 0.0f64..100.0), 1..n).prop_map(
        |vals| {
            vals.into_iter()
                .enumerate()
                .map(|(i, (a, b, c))| Point::new(i, vec![a, b, c]))
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dominance is irreflexive and antisymmetric.
    #[test]
    fn dominance_is_strict_partial_order(pts in points_strategy(12)) {
        for a in &pts {
            prop_assert!(!dominates(a, a, &MM3));
            for b in &pts {
                prop_assert!(!(dominates(a, b, &MM3) && dominates(b, a, &MM3)));
            }
        }
    }

    /// No front member is dominated by any population member, and every
    /// non-member is dominated by someone.
    #[test]
    fn front_is_exactly_the_non_dominated_set(pts in points_strategy(24)) {
        let front = pareto_front(&pts, &MM3);
        prop_assert!(!front.is_empty());
        let front_ids: Vec<usize> = front.iter().map(|p| p.id).collect();
        for p in &pts {
            let dominated = pts.iter().any(|q| dominates(q, p, &MM3));
            prop_assert_eq!(front_ids.contains(&p.id), !dominated);
        }
    }

    /// Non-dominated sorting partitions the population, its first layer is
    /// the Pareto front, and no point in layer k dominates a point in an
    /// earlier layer.
    #[test]
    fn sort_layering_invariants(pts in points_strategy(20)) {
        let fronts = non_dominated_sort(&pts, &MM3);
        let total: usize = fronts.iter().map(|f| f.len()).sum();
        prop_assert_eq!(total, pts.len());
        let direct: Vec<usize> = pareto_front(&pts, &MM3).iter().map(|p| p.id).collect();
        let mut layer0: Vec<usize> = fronts[0].iter().map(|p| p.id).collect();
        let mut direct_sorted = direct.clone();
        layer0.sort_unstable();
        direct_sorted.sort_unstable();
        prop_assert_eq!(layer0, direct_sorted);
        for (k, layer) in fronts.iter().enumerate() {
            for earlier in fronts.iter().take(k) {
                for p in layer {
                    for q in earlier {
                        prop_assert!(!dominates(p, q, &MM3));
                    }
                }
            }
        }
    }

    /// Normalization preserves per-objective ordering and lands in [0,1].
    #[test]
    fn normalization_preserves_order(pts in points_strategy(16)) {
        let normed = min_max_normalize(&pts);
        for obj in 0..3 {
            for i in 0..pts.len() {
                prop_assert!((0.0..=1.0).contains(&normed[i].values[obj]));
                for j in 0..pts.len() {
                    if pts[i].values[obj] < pts[j].values[obj] {
                        prop_assert!(normed[i].values[obj] <= normed[j].values[obj]);
                    }
                }
            }
        }
    }

    /// Hypervolume is monotone: adding a point never decreases it.
    #[test]
    fn hypervolume_monotone(
        pts in proptest::collection::vec((0.0f64..9.0, 0.0f64..9.0), 1..10),
        extra in (0.0f64..9.0, 0.0f64..9.0),
    ) {
        let r = (10.0, 10.0);
        let base = hypervolume_2d(&pts, r);
        let mut more = pts.clone();
        more.push(extra);
        let bigger = hypervolume_2d(&more, r);
        prop_assert!(bigger + 1e-9 >= base, "{bigger} < {base}");
        // And bounded by the reference box.
        prop_assert!(bigger <= 100.0 + 1e-9);
    }
}
