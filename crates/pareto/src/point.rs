//! Objective senses, points, and the dominance relation.

use serde::{Deserialize, Serialize};

/// Direction of improvement for one objective.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Objective {
    Maximize,
    Minimize,
}

impl Objective {
    /// True when `a` is strictly better than `b` in this sense.
    pub fn better(&self, a: f64, b: f64) -> bool {
        match self {
            Objective::Maximize => a > b,
            Objective::Minimize => a < b,
        }
    }

    /// True when `a` is at least as good as `b`.
    pub fn no_worse(&self, a: f64, b: f64) -> bool {
        match self {
            Objective::Maximize => a >= b,
            Objective::Minimize => a <= b,
        }
    }
}

/// A candidate solution: an opaque id plus one value per objective.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Point {
    pub id: usize,
    pub values: Vec<f64>,
}

impl Point {
    pub fn new(id: usize, values: Vec<f64>) -> Point {
        assert!(!values.is_empty(), "point needs at least one objective");
        assert!(
            values.iter().all(|v| v.is_finite()),
            "objective values must be finite"
        );
        Point { id, values }
    }
}

/// Pareto dominance: `a` dominates `b` iff `a` is no worse in every
/// objective and strictly better in at least one.
pub fn dominates(a: &Point, b: &Point, senses: &[Objective]) -> bool {
    assert_eq!(a.values.len(), senses.len(), "objective arity mismatch");
    assert_eq!(b.values.len(), senses.len(), "objective arity mismatch");
    let mut strictly_better = false;
    for ((&av, &bv), sense) in a.values.iter().zip(&b.values).zip(senses) {
        if !sense.no_worse(av, bv) {
            return false;
        }
        if sense.better(av, bv) {
            strictly_better = true;
        }
    }
    strictly_better
}

#[cfg(test)]
mod tests {
    use super::*;

    const MM: [Objective; 2] = [Objective::Maximize, Objective::Minimize];

    #[test]
    fn strict_dominance() {
        let a = Point::new(0, vec![10.0, 1.0]);
        let b = Point::new(1, vec![5.0, 2.0]);
        assert!(dominates(&a, &b, &MM));
        assert!(!dominates(&b, &a, &MM));
    }

    #[test]
    fn equal_points_do_not_dominate() {
        let a = Point::new(0, vec![1.0, 1.0]);
        let b = Point::new(1, vec![1.0, 1.0]);
        assert!(!dominates(&a, &b, &MM));
        assert!(!dominates(&b, &a, &MM));
    }

    #[test]
    fn trade_off_is_incomparable() {
        let a = Point::new(0, vec![10.0, 10.0]);
        let b = Point::new(1, vec![5.0, 1.0]);
        assert!(!dominates(&a, &b, &MM));
        assert!(!dominates(&b, &a, &MM));
    }

    #[test]
    fn weak_improvement_in_one_objective_suffices() {
        let a = Point::new(0, vec![10.0, 1.0]);
        let b = Point::new(1, vec![10.0, 2.0]);
        assert!(dominates(&a, &b, &MM));
    }

    #[test]
    fn sense_direction_matters() {
        let a = Point::new(0, vec![10.0]);
        let b = Point::new(1, vec![5.0]);
        assert!(dominates(&a, &b, &[Objective::Maximize]));
        assert!(dominates(&b, &a, &[Objective::Minimize]));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_values_rejected() {
        let _ = Point::new(0, vec![f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let a = Point::new(0, vec![1.0, 2.0]);
        let b = Point::new(1, vec![1.0]);
        let _ = dominates(&a, &b, &MM);
    }
}
