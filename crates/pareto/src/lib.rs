//! # hydronas-pareto
//!
//! Multi-objective optimization analysis for the HydroNAS reproduction:
//! dominance relations over mixed maximize/minimize objectives, fast
//! non-dominated sorting (Deb et al.), crowding distance, hypervolume,
//! min-max normalization, and the scatter/radar exports behind the
//! paper's Figures 3 and 4.
//!
//! ```
//! use hydronas_pareto::{pareto_front, Objective, Point};
//!
//! let senses = [Objective::Maximize, Objective::Minimize];
//! let points = vec![
//!     Point::new(0, vec![96.0, 8.0]),   // accurate and fast
//!     Point::new(1, vec![90.0, 30.0]),  // dominated
//!     Point::new(2, vec![97.0, 20.0]),  // accuracy/latency trade-off
//! ];
//! let front = pareto_front(&points, &senses);
//! let ids: Vec<usize> = front.iter().map(|p| p.id).collect();
//! assert_eq!(ids, vec![0, 2]);
//! ```

mod export;
mod front;
mod hypervolume;
mod normalize;
mod point;
mod scalarize;

pub use export::{radar_csv, radar_rows, scatter_csv, RadarAxis, RadarRow};
pub use front::{crowding_distance, knee_point, non_dominated_sort, pareto_front};
pub use hypervolume::{hypervolume_2d, hypervolume_3d};
pub use normalize::{min_max_normalize, normalize_point, ValueRange};
pub use point::{dominates, Objective, Point};
pub use scalarize::{
    epsilon_constraint, supported_fraction, weighted_best, weighted_score, weighted_sum_front,
};
