//! Non-dominated extraction, fast non-dominated sorting, crowding
//! distance, and knee-point selection.

use crate::point::{dominates, Objective, Point};

/// Extracts the (first) Pareto front: all points dominated by no other.
/// Duplicate-objective points all survive (they do not dominate each
/// other), matching the paper's treatment of coinciding configurations.
pub fn pareto_front(points: &[Point], senses: &[Objective]) -> Vec<Point> {
    let _span = hydronas_telemetry::span("pareto.front", "pareto_front");
    let front: Vec<Point> = points
        .iter()
        .filter(|candidate| {
            !points
                .iter()
                .any(|other| dominates(other, candidate, senses))
        })
        .cloned()
        .collect();
    hydronas_telemetry::add_all(&[
        ("pareto.front.calls", 1),
        ("pareto.front.points_in", points.len() as u64),
        ("pareto.front.points_out", front.len() as u64),
    ]);
    front
}

/// Fast non-dominated sort (Deb et al., NSGA-II): partitions points into
/// fronts; `result[0]` is the Pareto front, `result[1]` the next layer, etc.
pub fn non_dominated_sort(points: &[Point], senses: &[Objective]) -> Vec<Vec<Point>> {
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    // dominated_by[i]: count of points dominating i;
    // dominating[i]: indices i dominates.
    let mut dominated_by = vec![0usize; n];
    let mut dominating: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for j in (i + 1)..n {
            if dominates(&points[i], &points[j], senses) {
                dominating[i].push(j);
                dominated_by[j] += 1;
            } else if dominates(&points[j], &points[i], senses) {
                dominating[j].push(i);
                dominated_by[i] += 1;
            }
        }
    }
    let mut fronts: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = (0..n).filter(|&i| dominated_by[i] == 0).collect();
    while !current.is_empty() {
        let mut next = Vec::new();
        for &i in &current {
            for &j in &dominating[i] {
                dominated_by[j] -= 1;
                if dominated_by[j] == 0 {
                    next.push(j);
                }
            }
        }
        fronts.push(std::mem::replace(&mut current, next));
    }
    fronts
        .into_iter()
        .map(|front| front.into_iter().map(|i| points[i].clone()).collect())
        .collect()
}

/// NSGA-II crowding distance within one front. Boundary points get
/// `f64::INFINITY`. Returned in the order of the input slice.
pub fn crowding_distance(front: &[Point]) -> Vec<f64> {
    let n = front.len();
    if n == 0 {
        return Vec::new();
    }
    let m = front[0].values.len();
    let mut distance = vec![0.0f64; n];
    if n <= 2 {
        return vec![f64::INFINITY; n];
    }
    for obj in 0..m {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            front[a].values[obj]
                .partial_cmp(&front[b].values[obj])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let lo = front[order[0]].values[obj];
        let hi = front[order[n - 1]].values[obj];
        distance[order[0]] = f64::INFINITY;
        distance[order[n - 1]] = f64::INFINITY;
        let span = hi - lo;
        if span <= 0.0 {
            continue;
        }
        for k in 1..n - 1 {
            let prev = front[order[k - 1]].values[obj];
            let next = front[order[k + 1]].values[obj];
            distance[order[k]] += (next - prev) / span;
        }
    }
    distance
}

/// Knee point: the front member with the largest minimal improvement over
/// its normalized neighbors — a simple max-min-normalized-distance-to-
/// extremes heuristic useful for picking "the" deployment model.
///
/// Each objective is normalized to `[0, 1]` with 1 = best; a point's
/// score is its *worst* normalized objective, and the highest score
/// wins. Unlike a sum (a weighted-sum scalarization, which rewards
/// lopsided extremes), max-min favors points that sacrifice no
/// objective — the balanced "knee" of the front.
pub fn knee_point(front: &[Point], senses: &[Objective]) -> Option<usize> {
    if front.is_empty() {
        return None;
    }
    let m = senses.len();
    // Normalize each objective to [0,1] with 1 = best.
    let mut lo = vec![f64::INFINITY; m];
    let mut hi = vec![f64::NEG_INFINITY; m];
    for p in front {
        for (k, &v) in p.values.iter().enumerate() {
            lo[k] = lo[k].min(v);
            hi[k] = hi[k].max(v);
        }
    }
    let score = |p: &Point| -> f64 {
        // Minimum normalized goodness across objectives (max-min rule).
        p.values
            .iter()
            .enumerate()
            .map(|(k, &v)| {
                let span = (hi[k] - lo[k]).max(1e-12);
                let unit = (v - lo[k]) / span;
                match senses[k] {
                    Objective::Maximize => unit,
                    Objective::Minimize => 1.0 - unit,
                }
            })
            .fold(f64::INFINITY, f64::min)
    };
    front
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| {
            score(a)
                .partial_cmp(&score(b))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MM: [Objective; 2] = [Objective::Maximize, Objective::Minimize];

    fn pts(vals: &[(f64, f64)]) -> Vec<Point> {
        vals.iter()
            .enumerate()
            .map(|(i, &(a, b))| Point::new(i, vec![a, b]))
            .collect()
    }

    #[test]
    fn front_extracts_non_dominated() {
        let points = pts(&[(96.0, 8.0), (90.0, 30.0), (97.0, 20.0), (80.0, 50.0)]);
        let front = pareto_front(&points, &MM);
        let ids: Vec<usize> = front.iter().map(|p| p.id).collect();
        assert_eq!(ids, vec![0, 2]);
    }

    #[test]
    fn all_incomparable_yields_full_front() {
        let points = pts(&[(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)]);
        assert_eq!(pareto_front(&points, &MM).len(), 3);
    }

    #[test]
    fn duplicates_all_survive() {
        let points = pts(&[(5.0, 5.0), (5.0, 5.0), (1.0, 9.0)]);
        let front = pareto_front(&points, &MM);
        // Both duplicates are on the front (neither dominates the other);
        // the third point is incomparable (better latency is false: 9 > 5,
        // worse in both) -> dominated.
        let ids: Vec<usize> = front.iter().map(|p| p.id).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn sort_layers_are_consistent() {
        let points = pts(&[
            (10.0, 1.0), // front 0
            (9.0, 2.0),  // front 1 (dominated by 0 only)
            (8.0, 3.0),  // front 2
            (10.0, 3.0), // dominated by 0, not by 1 (10>9) -> front 1
        ]);
        let fronts = non_dominated_sort(&points, &MM);
        assert_eq!(fronts.len(), 3);
        let ids0: Vec<usize> = fronts[0].iter().map(|p| p.id).collect();
        assert_eq!(ids0, vec![0]);
        let mut ids1: Vec<usize> = fronts[1].iter().map(|p| p.id).collect();
        ids1.sort_unstable();
        assert_eq!(ids1, vec![1, 3]);
        // Layer 0 of the sort equals the direct Pareto front.
        let direct: Vec<usize> = pareto_front(&points, &MM).iter().map(|p| p.id).collect();
        assert_eq!(ids0, direct);
    }

    #[test]
    fn sort_partitions_every_point_once() {
        let points = pts(&[(1.0, 5.0), (2.0, 4.0), (3.0, 3.0), (2.5, 3.5), (0.5, 0.5)]);
        let fronts = non_dominated_sort(&points, &MM);
        let total: usize = fronts.iter().map(|f| f.len()).sum();
        assert_eq!(total, points.len());
        let mut ids: Vec<usize> = fronts.iter().flatten().map(|p| p.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        assert!(pareto_front(&[], &MM).is_empty());
        assert!(non_dominated_sort(&[], &MM).is_empty());
        assert!(crowding_distance(&[]).is_empty());
        assert_eq!(knee_point(&[], &MM), None);
    }

    #[test]
    fn crowding_boundaries_are_infinite() {
        let front = pts(&[(1.0, 9.0), (5.0, 5.0), (9.0, 1.0)]);
        let d = crowding_distance(&front);
        assert!(d[0].is_infinite());
        assert!(d[2].is_infinite());
        assert!(d[1].is_finite() && d[1] > 0.0);
    }

    #[test]
    fn crowding_prefers_isolated_points() {
        // Four points on a line; the two inner ones have different gaps.
        let front = pts(&[(0.0, 10.0), (1.0, 9.0), (8.0, 2.0), (10.0, 0.0)]);
        let d = crowding_distance(&front);
        // Point 2 sits in a sparser neighborhood than point 1.
        assert!(d[2] > d[1], "{d:?}");
    }

    #[test]
    fn knee_balances_objectives() {
        // Extremes: (100, 100ms) and (60, 5ms); knee (95, 10ms) is close
        // to best in both.
        let front = pts(&[(100.0, 100.0), (95.0, 10.0), (60.0, 5.0)]);
        assert_eq!(knee_point(&front, &MM), Some(1));
    }

    #[test]
    fn knee_uses_max_min_not_summed_goodness() {
        // Normalized goodness (accuracy/100, 1 - latency/100):
        //   id 0: (1.0, 0.0)   extreme        sum 1.00  min 0.00
        //   id 1: (0.0, 1.0)   extreme        sum 1.00  min 0.00
        //   id 2: (1.0, 0.55)  lopsided       sum 1.55  min 0.55
        //   id 3: (0.7, 0.7)   balanced       sum 1.40  min 0.70
        // A summed scalarization would pick id 2; the documented max-min
        // rule picks the balanced id 3.
        let front = pts(&[(100.0, 100.0), (0.0, 0.0), (100.0, 45.0), (70.0, 30.0)]);
        assert_eq!(knee_point(&front, &MM), Some(3));
    }
}
