//! Hypervolume indicators (2-d exact, 3-d by slicing).
//!
//! Values are computed in *minimization space*: callers convert maximize
//! objectives by negation or `ref - v` before calling. The hypervolume is
//! the measure of the region dominated by the front and bounded by the
//! reference point (which must be worse than every point).

/// 2-d hypervolume for minimization, reference point `ref_pt`.
pub fn hypervolume_2d(points: &[(f64, f64)], ref_pt: (f64, f64)) -> f64 {
    let mut pts: Vec<(f64, f64)> = points
        .iter()
        .copied()
        .filter(|&(x, y)| x <= ref_pt.0 && y <= ref_pt.1)
        .collect();
    if pts.is_empty() {
        return 0.0;
    }
    // Sort by x ascending; sweep keeping the best (lowest) y so far.
    pts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut hv = 0.0;
    let mut best_y = ref_pt.1;
    let mut prev_x = None::<f64>;
    // Walk from left to right, adding the rectangle each point contributes
    // to the staircase between itself and the next x.
    for &(x, y) in &pts {
        if let Some(px) = prev_x {
            if x > px {
                hv += (x - px) * (ref_pt.1 - best_y).max(0.0);
            }
        }
        prev_x = Some(x);
        if y < best_y {
            best_y = y;
        }
    }
    hv += (ref_pt.0 - prev_x.unwrap()) * (ref_pt.1 - best_y).max(0.0);
    hv
}

/// 3-d hypervolume for minimization by sweeping the third axis and
/// accumulating 2-d slices (simple HSO variant; O(n^2 log n), fine for the
/// front sizes in this study).
pub fn hypervolume_3d(points: &[(f64, f64, f64)], ref_pt: (f64, f64, f64)) -> f64 {
    let mut pts: Vec<(f64, f64, f64)> = points
        .iter()
        .copied()
        .filter(|&(x, y, z)| x <= ref_pt.0 && y <= ref_pt.1 && z <= ref_pt.2)
        .collect();
    if pts.is_empty() {
        return 0.0;
    }
    pts.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Equal));
    let mut hv = 0.0;
    for i in 0..pts.len() {
        let z_lo = pts[i].2;
        let z_hi = if i + 1 < pts.len() {
            pts[i + 1].2
        } else {
            ref_pt.2
        };
        if z_hi <= z_lo {
            continue;
        }
        // All points with z <= z_lo contribute to this slab's 2-d slice.
        let slice: Vec<(f64, f64)> = pts[..=i].iter().map(|&(x, y, _)| (x, y)).collect();
        hv += (z_hi - z_lo) * hypervolume_2d(&slice, (ref_pt.0, ref_pt.1));
    }
    hv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_point_2d_is_rectangle() {
        let hv = hypervolume_2d(&[(1.0, 1.0)], (3.0, 4.0));
        assert!((hv - 6.0).abs() < 1e-12);
    }

    #[test]
    fn staircase_2d() {
        // Two incomparable points: union of two rectangles minus overlap.
        let hv = hypervolume_2d(&[(1.0, 2.0), (2.0, 1.0)], (3.0, 3.0));
        // rect1 = 2*1=2, rect2 = 1*2=2, overlap = 1*1=1 -> 3.
        assert!((hv - 3.0).abs() < 1e-12, "{hv}");
    }

    #[test]
    fn dominated_point_adds_nothing_2d() {
        let base = hypervolume_2d(&[(1.0, 1.0)], (4.0, 4.0));
        let with_dom = hypervolume_2d(&[(1.0, 1.0), (2.0, 2.0)], (4.0, 4.0));
        assert!((base - with_dom).abs() < 1e-12);
    }

    #[test]
    fn out_of_reference_points_ignored() {
        let hv = hypervolume_2d(&[(5.0, 5.0)], (3.0, 3.0));
        assert_eq!(hv, 0.0);
        assert_eq!(hypervolume_3d(&[(5.0, 1.0, 1.0)], (3.0, 3.0, 3.0)), 0.0);
    }

    #[test]
    fn single_point_3d_is_box() {
        let hv = hypervolume_3d(&[(1.0, 1.0, 1.0)], (3.0, 4.0, 2.0)); // 2*3*1
        assert!((hv - 6.0).abs() < 1e-12, "{hv}");
    }

    #[test]
    fn two_point_3d_union() {
        // Boxes from (0,0,0)-style corners: p1=(1,1,2), p2=(2,2,1), ref (3,3,3).
        // vol1 = 2*2*1 = 4, vol2 = 1*1*2 = 2, overlap = 1*1*1 = 1 -> 5.
        let hv = hypervolume_3d(&[(1.0, 1.0, 2.0), (2.0, 2.0, 1.0)], (3.0, 3.0, 3.0));
        assert!((hv - 5.0).abs() < 1e-12, "{hv}");
    }

    #[test]
    fn hv_is_monotone_in_front_quality() {
        let worse = hypervolume_3d(&[(2.0, 2.0, 2.0)], (4.0, 4.0, 4.0));
        let better = hypervolume_3d(&[(1.0, 2.0, 2.0)], (4.0, 4.0, 4.0));
        assert!(better > worse);
        // Adding an incomparable point never reduces HV.
        let more = hypervolume_3d(&[(1.0, 2.0, 2.0), (3.0, 1.0, 1.0)], (4.0, 4.0, 4.0));
        assert!(more >= better);
    }

    #[test]
    fn empty_front_is_zero() {
        assert_eq!(hypervolume_2d(&[], (1.0, 1.0)), 0.0);
        assert_eq!(hypervolume_3d(&[], (1.0, 1.0, 1.0)), 0.0);
    }
}
