//! Figure data exports: the 3-d scatter behind Figure 3 and the radar
//! rows behind Figure 4.

use crate::normalize::{normalize_point, ValueRange};
use crate::point::Point;
use serde::{Deserialize, Serialize};

/// One axis of a radar plot.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RadarAxis {
    pub label: String,
    /// Normalized value in `[0, 1]`.
    pub value: f64,
}

/// One radar polygon (one non-dominated solution in Figure 4).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RadarRow {
    pub id: usize,
    /// The paper colors rows by pool choice: red = no pool, green = pool.
    pub group: String,
    pub axes: Vec<RadarAxis>,
}

/// Renders the full population as CSV (`id,<obj...>,on_front`), the data
/// behind the paper's Figure 3 scatter.
pub fn scatter_csv(points: &[Point], headers: &[&str], front_ids: &[usize]) -> String {
    assert!(!headers.is_empty(), "need objective headers");
    let mut out = String::with_capacity(points.len() * 32);
    out.push_str("id,");
    out.push_str(&headers.join(","));
    out.push_str(",on_front\n");
    for p in points {
        assert_eq!(p.values.len(), headers.len(), "arity mismatch");
        out.push_str(&p.id.to_string());
        for v in &p.values {
            out.push(',');
            out.push_str(&format!("{v:.6}"));
        }
        out.push(',');
        out.push_str(if front_ids.contains(&p.id) { "1" } else { "0" });
        out.push('\n');
    }
    out
}

/// Builds normalized radar rows: each solution contributes one polygon
/// whose axes are `labels` (config dimensions + objectives), normalized
/// within the population ranges. `group_of` labels each row (the paper's
/// red/green pool-choice split).
pub fn radar_rows(
    points: &[Point],
    labels: &[&str],
    group_of: impl Fn(usize) -> String,
) -> Vec<RadarRow> {
    if points.is_empty() {
        return Vec::new();
    }
    let ranges = ValueRange::of(points);
    points
        .iter()
        .map(|p| {
            let normed = normalize_point(p, &ranges);
            RadarRow {
                id: p.id,
                group: group_of(p.id),
                axes: labels
                    .iter()
                    .zip(normed)
                    .map(|(&label, value)| RadarAxis {
                        label: label.to_string(),
                        value,
                    })
                    .collect(),
            }
        })
        .collect()
}

/// Renders radar rows as CSV (`id,group,<axis...>`).
pub fn radar_csv(rows: &[RadarRow]) -> String {
    let mut out = String::new();
    if rows.is_empty() {
        return out;
    }
    out.push_str("id,group");
    for axis in &rows[0].axes {
        out.push(',');
        out.push_str(&axis.label);
    }
    out.push('\n');
    for row in rows {
        out.push_str(&format!("{},{}", row.id, row.group));
        for axis in &row.axes {
            out.push_str(&format!(",{:.4}", axis.value));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_marks_front_members() {
        let pts = vec![Point::new(0, vec![1.0, 2.0]), Point::new(1, vec![3.0, 4.0])];
        let csv = scatter_csv(&pts, &["acc", "lat"], &[1]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "id,acc,lat,on_front");
        assert!(lines[1].starts_with("0,") && lines[1].ends_with(",0"));
        assert!(lines[2].starts_with("1,") && lines[2].ends_with(",1"));
    }

    #[test]
    fn radar_rows_are_normalized() {
        let pts = vec![
            Point::new(0, vec![0.0, 10.0]),
            Point::new(1, vec![4.0, 20.0]),
        ];
        let rows = radar_rows(&pts, &["a", "b"], |id| {
            if id == 0 {
                "red".into()
            } else {
                "green".into()
            }
        });
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].axes[0].value, 0.0);
        assert_eq!(rows[1].axes[0].value, 1.0);
        assert_eq!(rows[0].group, "red");
        assert_eq!(rows[1].group, "green");
    }

    #[test]
    fn radar_csv_layout() {
        let pts = vec![Point::new(3, vec![1.0, 2.0])];
        let rows = radar_rows(&pts, &["kernel", "stride"], |_| "red".into());
        let csv = radar_csv(&rows);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "id,group,kernel,stride");
        assert!(lines[1].starts_with("3,red,"));
    }

    #[test]
    fn empty_exports() {
        assert!(radar_rows(&[], &["x"], |_| String::new()).is_empty());
        assert_eq!(radar_csv(&[]), "");
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn scatter_arity_checked() {
        let pts = vec![Point::new(0, vec![1.0])];
        let _ = scatter_csv(&pts, &["a", "b"], &[]);
    }
}
