//! Min-max normalization of objective values (Figure 3/4 preprocessing).

use crate::point::Point;
use serde::{Deserialize, Serialize};

/// Observed value range of one objective across a population.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ValueRange {
    pub min: f64,
    pub max: f64,
}

impl ValueRange {
    /// Computes ranges for every objective across the points.
    pub fn of(points: &[Point]) -> Vec<ValueRange> {
        assert!(!points.is_empty(), "cannot compute ranges of an empty set");
        let m = points[0].values.len();
        let mut ranges = vec![
            ValueRange {
                min: f64::INFINITY,
                max: f64::NEG_INFINITY
            };
            m
        ];
        for p in points {
            assert_eq!(p.values.len(), m, "inconsistent objective arity");
            for (r, &v) in ranges.iter_mut().zip(&p.values) {
                r.min = r.min.min(v);
                r.max = r.max.max(v);
            }
        }
        ranges
    }

    /// Maps `v` to `[0, 1]` within this range (0.5 for degenerate ranges).
    pub fn unit(&self, v: f64) -> f64 {
        let span = self.max - self.min;
        if span <= 0.0 {
            0.5
        } else {
            ((v - self.min) / span).clamp(0.0, 1.0)
        }
    }
}

/// Normalizes one point against precomputed ranges.
pub fn normalize_point(point: &Point, ranges: &[ValueRange]) -> Vec<f64> {
    assert_eq!(point.values.len(), ranges.len(), "arity mismatch");
    point
        .values
        .iter()
        .zip(ranges)
        .map(|(&v, r)| r.unit(v))
        .collect()
}

/// Normalizes a whole population to the unit hypercube (the paper
/// normalizes the non-dominated solutions "within their respective
/// ranges" for Figure 3).
pub fn min_max_normalize(points: &[Point]) -> Vec<Point> {
    if points.is_empty() {
        return Vec::new();
    }
    let ranges = ValueRange::of(points);
    points
        .iter()
        .map(|p| Point {
            id: p.id,
            values: normalize_point(p, &ranges),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_extremes() {
        let pts = vec![
            Point::new(0, vec![1.0, 100.0]),
            Point::new(1, vec![3.0, 50.0]),
            Point::new(2, vec![2.0, 75.0]),
        ];
        let r = ValueRange::of(&pts);
        assert_eq!(r[0], ValueRange { min: 1.0, max: 3.0 });
        assert_eq!(
            r[1],
            ValueRange {
                min: 50.0,
                max: 100.0
            }
        );
    }

    #[test]
    fn unit_maps_linearly() {
        let r = ValueRange {
            min: 10.0,
            max: 20.0,
        };
        assert_eq!(r.unit(10.0), 0.0);
        assert_eq!(r.unit(20.0), 1.0);
        assert_eq!(r.unit(15.0), 0.5);
        // Clamped outside the range.
        assert_eq!(r.unit(30.0), 1.0);
    }

    #[test]
    fn degenerate_range_maps_to_half() {
        let r = ValueRange { min: 5.0, max: 5.0 };
        assert_eq!(r.unit(5.0), 0.5);
    }

    #[test]
    fn normalize_population() {
        let pts = vec![
            Point::new(0, vec![0.0, 8.0]),
            Point::new(7, vec![10.0, 16.0]),
        ];
        let normed = min_max_normalize(&pts);
        assert_eq!(normed[0].values, vec![0.0, 0.0]);
        assert_eq!(normed[1].values, vec![1.0, 1.0]);
        // Ids are preserved.
        assert_eq!(normed[1].id, 7);
    }

    #[test]
    fn empty_population_is_fine() {
        assert!(min_max_normalize(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn ranges_of_empty_panic() {
        let _ = ValueRange::of(&[]);
    }
}
