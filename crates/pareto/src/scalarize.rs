//! Scalarization baselines: weighted-sum and epsilon-constraint.
//!
//! Classic single-objective reductions of a multi-objective problem. They
//! are cheaper than dominance-based analysis but provably weaker: a
//! weighted sum can only reach *supported* (convex-hull) points of the
//! front, so non-convex trade-offs — common when one objective is
//! near-discrete, like this study's memory levels — are invisible to it.
//! [`weighted_sum_front`] quantifies exactly how much of the dominance
//! front a sweep of weights recovers.

use crate::front::pareto_front;
use crate::normalize::ValueRange;
use crate::point::{Objective, Point};

/// Scalarizes one point: a weighted sum over unit-normalized objectives,
/// where every objective is converted so larger is better.
pub fn weighted_score(
    point: &Point,
    weights: &[f64],
    senses: &[Objective],
    ranges: &[ValueRange],
) -> f64 {
    assert_eq!(point.values.len(), weights.len(), "weight arity mismatch");
    assert_eq!(point.values.len(), senses.len(), "sense arity mismatch");
    point
        .values
        .iter()
        .zip(weights)
        .zip(senses.iter().zip(ranges))
        .map(|((&v, &w), (sense, range))| {
            let unit = range.unit(v);
            let goodness = match sense {
                Objective::Maximize => unit,
                Objective::Minimize => 1.0 - unit,
            };
            w * goodness
        })
        .sum()
}

/// Best point under one weight vector.
pub fn weighted_best<'a>(
    points: &'a [Point],
    weights: &[f64],
    senses: &[Objective],
) -> Option<&'a Point> {
    if points.is_empty() {
        return None;
    }
    let ranges = ValueRange::of(points);
    points.iter().max_by(|a, b| {
        weighted_score(a, weights, senses, &ranges)
            .partial_cmp(&weighted_score(b, weights, senses, &ranges))
            .unwrap_or(std::cmp::Ordering::Equal)
    })
}

/// Sweeps a lattice of weight vectors (steps per dimension) and returns
/// the distinct winners — the *supported* subset of the Pareto front.
pub fn weighted_sum_front(points: &[Point], senses: &[Objective], steps: usize) -> Vec<Point> {
    assert!(steps >= 2, "need at least 2 weight steps");
    assert_eq!(
        senses.len(),
        3,
        "lattice sweep implemented for 3 objectives"
    );
    let mut winners: Vec<Point> = Vec::new();
    for i in 0..=steps {
        for j in 0..=(steps - i) {
            let k = steps - i - j;
            let w = [
                i as f64 / steps as f64,
                j as f64 / steps as f64,
                k as f64 / steps as f64,
            ];
            if let Some(best) = weighted_best(points, &w, senses) {
                if !winners.iter().any(|p| p.id == best.id) {
                    winners.push(best.clone());
                }
            }
        }
    }
    winners
}

/// Epsilon-constraint: maximize/minimize `objective` subject to every
/// other objective being within its epsilon bound (same arity as the
/// senses; the entry at `objective` is ignored).
pub fn epsilon_constraint<'a>(
    points: &'a [Point],
    senses: &[Objective],
    objective: usize,
    epsilons: &[f64],
) -> Option<&'a Point> {
    assert!(objective < senses.len(), "objective index out of range");
    assert_eq!(epsilons.len(), senses.len(), "epsilon arity mismatch");
    points
        .iter()
        .filter(|p| {
            p.values
                .iter()
                .zip(senses)
                .zip(epsilons)
                .enumerate()
                .all(|(k, ((&v, sense), &eps))| {
                    if k == objective {
                        return true;
                    }
                    match sense {
                        Objective::Maximize => v >= eps,
                        Objective::Minimize => v <= eps,
                    }
                })
        })
        .max_by(|a, b| {
            let (va, vb) = (a.values[objective], b.values[objective]);
            let ord = va.partial_cmp(&vb).unwrap_or(std::cmp::Ordering::Equal);
            match senses[objective] {
                Objective::Maximize => ord,
                Objective::Minimize => ord.reverse(),
            }
        })
}

/// Fraction of the dominance front a weighted-sum sweep recovers.
pub fn supported_fraction(points: &[Point], senses: &[Objective], steps: usize) -> f64 {
    let front = pareto_front(points, senses);
    if front.is_empty() {
        return 1.0;
    }
    let supported = weighted_sum_front(points, senses, steps);
    let hits = front
        .iter()
        .filter(|p| supported.iter().any(|s| s.id == p.id))
        .count();
    hits as f64 / front.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    const MM3: [Objective; 3] = [
        Objective::Maximize,
        Objective::Minimize,
        Objective::Minimize,
    ];

    fn pts(vals: &[(f64, f64, f64)]) -> Vec<Point> {
        vals.iter()
            .enumerate()
            .map(|(i, &(a, b, c))| Point::new(i, vec![a, b, c]))
            .collect()
    }

    #[test]
    fn weighted_best_follows_the_weights() {
        let points = pts(&[(99.0, 100.0, 50.0), (80.0, 10.0, 11.0)]);
        // All weight on accuracy -> point 0.
        let best_acc = weighted_best(&points, &[1.0, 0.0, 0.0], &MM3).unwrap();
        assert_eq!(best_acc.id, 0);
        // All weight on latency -> point 1.
        let best_lat = weighted_best(&points, &[0.0, 1.0, 0.0], &MM3).unwrap();
        assert_eq!(best_lat.id, 1);
    }

    #[test]
    fn weighted_winners_are_non_dominated() {
        let points = pts(&[
            (96.0, 8.0, 11.0),
            (90.0, 30.0, 44.0), // dominated
            (97.0, 20.0, 11.0),
            (85.0, 5.0, 11.0),
        ]);
        let supported = weighted_sum_front(&points, &MM3, 8);
        let front = pareto_front(&points, &MM3);
        for w in &supported {
            assert!(
                front.iter().any(|p| p.id == w.id),
                "winner {} off the front",
                w.id
            );
        }
    }

    #[test]
    fn weighted_sum_misses_non_convex_points() {
        // Three points on a strongly concave front (middle point is
        // non-supported): the sweep must miss it.
        let points = pts(&[
            (100.0, 100.0, 1.0), // extreme accuracy
            (55.0, 52.0, 1.0),   // non-dominated but barely off the segment
            (50.0, 0.0, 1.0),    // extreme latency
        ]);
        let front = pareto_front(&points, &MM3);
        assert_eq!(front.len(), 3);
        let frac = supported_fraction(&points, &MM3, 16);
        assert!(
            frac < 1.0,
            "sweep recovered the non-supported point: {frac}"
        );
    }

    #[test]
    fn epsilon_constraint_respects_bounds() {
        let points = pts(&[(96.0, 8.0, 11.0), (97.0, 20.0, 11.0), (99.0, 40.0, 44.0)]);
        // Max accuracy subject to latency <= 25 and memory <= 12.
        let pick = epsilon_constraint(&points, &MM3, 0, &[0.0, 25.0, 12.0]).unwrap();
        assert_eq!(pick.id, 1);
        // Tighten latency: only point 0 qualifies.
        let pick = epsilon_constraint(&points, &MM3, 0, &[0.0, 10.0, 12.0]).unwrap();
        assert_eq!(pick.id, 0);
        // Infeasible bounds: none.
        assert!(epsilon_constraint(&points, &MM3, 0, &[0.0, 1.0, 1.0]).is_none());
    }

    #[test]
    fn empty_inputs() {
        assert!(weighted_best(&[], &[1.0, 0.0, 0.0], &MM3).is_none());
        assert_eq!(supported_fraction(&[], &MM3, 4), 1.0);
    }

    #[test]
    #[should_panic(expected = "weight arity mismatch")]
    fn arity_checked() {
        let p = Point::new(0, vec![1.0, 2.0, 3.0]);
        let ranges = ValueRange::of(std::slice::from_ref(&p));
        let _ = weighted_score(&p, &[1.0], &MM3, &ranges);
    }
}
