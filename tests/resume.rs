//! Crash/resume semantics of the journaled sweep: a sweep killed after N
//! journal records and resumed must produce an `ExperimentDb` that is
//! byte-identical to an uninterrupted run — including under injected
//! failures and transient-failure retries.

use hydronas::prelude::*;
use hydronas_nas::space::{full_grid, SearchSpace};
use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};

fn trials() -> Vec<TrialSpec> {
    full_grid(&SearchSpace::paper())
        .into_iter()
        .filter(|t| t.combo.channels == 5 && t.combo.batch_size == 16)
        .take(60)
        .collect()
}

fn temp_journal(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("hydronas_resume_{tag}_{}", std::process::id()));
    std::fs::remove_file(&path).ok();
    path
}

fn builder(trials: Vec<TrialSpec>, config: &SchedulerConfig, journal: Option<&Path>) -> Sweep {
    let mut b = Sweep::builder()
        .with_trials(trials)
        .with_seed(config.seed)
        .with_injected_failures(config.injected_failures)
        .with_transient_failures(config.transient_failures)
        .with_retry(RetryPolicy::new(config.max_attempts));
    if let Some(path) = journal {
        b = b.with_journal(path);
    }
    b.build()
}

fn sweep(config: &SchedulerConfig, journal: Option<&Path>) -> SweepReport {
    builder(trials(), config, journal).run().expect("sweep I/O")
}

/// Simulates a crash: keep only the first `keep` journal lines, plus a
/// torn partial record as if the process died mid-append.
fn truncate_journal(path: &Path, keep: usize) {
    let text = std::fs::read_to_string(path).unwrap();
    let prefix: String = text.lines().take(keep).map(|l| format!("{l}\n")).collect();
    std::fs::write(path, prefix).unwrap();
    let mut file = OpenOptions::new().append(true).open(path).unwrap();
    file.write_all(b"{\"attempts\":1,\"outcome\":{\"spec\"")
        .unwrap();
}

#[test]
fn resumed_sweep_is_byte_identical() {
    let config = SchedulerConfig {
        injected_failures: 3,
        ..Default::default()
    };
    let uninterrupted = sweep(&config, None);

    let journal = temp_journal("basic");
    let full = sweep(&config, Some(&journal));
    assert_eq!(full.db.to_json(), uninterrupted.db.to_json());
    assert_eq!(read_journal(&journal).unwrap().len(), 60);

    truncate_journal(&journal, 20);
    let resumed = sweep(&config, Some(&journal));
    assert_eq!(resumed.stats.replayed, 20);
    assert_eq!(resumed.stats.finished(), 60);
    assert_eq!(
        resumed.db.to_json(),
        uninterrupted.db.to_json(),
        "resume must reproduce the uninterrupted database byte for byte"
    );
    // After the resumed run the journal is complete and torn-line free.
    assert_eq!(read_journal(&journal).unwrap().len(), 60);
    std::fs::remove_file(&journal).ok();
}

#[test]
fn resume_is_byte_identical_under_failures_and_retries() {
    let config = SchedulerConfig {
        injected_failures: 4,
        transient_failures: 5,
        max_attempts: 3,
        ..Default::default()
    };
    let uninterrupted = sweep(&config, None);
    assert_eq!(
        uninterrupted.stats.failed, 4,
        "permanent failures stay failed"
    );
    // 5 transient recoveries (1 retry each) + 4 permanent (2 retries each).
    assert_eq!(uninterrupted.stats.retried, 13);
    assert_eq!(uninterrupted.db.valid().len(), 56);

    let journal = temp_journal("retries");
    let full = sweep(&config, Some(&journal));
    assert_eq!(full.db.to_json(), uninterrupted.db.to_json());

    truncate_journal(&journal, 37);
    let resumed = sweep(&config, Some(&journal));
    assert_eq!(resumed.stats.replayed, 37);
    assert_eq!(resumed.db.to_json(), uninterrupted.db.to_json());
    // Replayed records keep their attempt counts, so the retry counter
    // survives the crash too.
    assert_eq!(resumed.stats.retried, 13);
    std::fs::remove_file(&journal).ok();
}

#[test]
fn journal_round_trips_through_multiple_crashes() {
    let config = SchedulerConfig {
        injected_failures: 2,
        ..Default::default()
    };
    let reference = sweep(&config, None);

    let journal = temp_journal("multi");
    let _ = sweep(&config, Some(&journal));
    for keep in [45, 10] {
        truncate_journal(&journal, keep);
        let resumed = sweep(&config, Some(&journal));
        assert_eq!(resumed.stats.replayed, keep);
        assert_eq!(resumed.db.to_json(), reference.db.to_json());
    }
    std::fs::remove_file(&journal).ok();
}

#[test]
fn stale_journal_is_rejected() {
    let config = SchedulerConfig::default();
    let journal = temp_journal("stale");
    let _ = sweep(&config, Some(&journal));

    // Re-running against a different trial set must fail loudly instead
    // of silently mixing experiments.
    let other: Vec<TrialSpec> = full_grid(&SearchSpace::paper())
        .into_iter()
        .filter(|t| t.combo.channels == 7)
        .take(30)
        .collect();
    let err = builder(other, &config, Some(&journal)).run().unwrap_err();
    assert!(
        matches!(err, SweepError::StaleJournal { .. }),
        "expected a typed stale-journal error, got {err}"
    );
    // The shim keeps the historical io::Error contract for old callers.
    assert_eq!(
        std::io::Error::from(err).kind(),
        std::io::ErrorKind::InvalidData
    );
    std::fs::remove_file(&journal).ok();
}
