//! Robustness contract of the sweep engine: cooperative cancellation,
//! deadline determinism, and chaos tolerance.
//!
//! The load-bearing guarantee: a sweep cancelled mid-run and resumed
//! from its journal produces an `ExperimentDb` byte-identical to an
//! uninterrupted run — cancellation loses wall-clock, never results.

use hydronas::prelude::*;
use hydronas_nas::space::{full_grid, SearchSpace};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

fn trials(n: usize) -> Vec<TrialSpec> {
    full_grid(&SearchSpace::paper())
        .into_iter()
        .take(n)
        .collect()
}

fn temp_journal(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("hydronas_robust_{tag}_{}", std::process::id()));
    std::fs::remove_file(&path).ok();
    path
}

/// Cancels the sweep's token after `after` live trial events land.
struct CancelAfter {
    remaining: usize,
    token: CancelToken,
}

impl ProgressSink for CancelAfter {
    fn on_event(&mut self, event: &SweepEvent) {
        if let SweepEvent::Trial { .. } = event {
            self.remaining = self.remaining.saturating_sub(1);
            if self.remaining == 0 {
                self.token.cancel();
            }
        }
    }
}

fn sweep_with_journal(trials: Vec<TrialSpec>, journal: Option<&Path>) -> Sweep {
    let mut b = Sweep::builder()
        .with_trials(trials)
        .with_injected_failures(3)
        .with_transient_failures(4);
    if let Some(path) = journal {
        b = b.with_journal(path);
    }
    b.build()
}

#[test]
fn cancel_mid_sweep_then_resume_is_byte_identical() {
    let n = 288;
    let uninterrupted = sweep_with_journal(trials(n), None).run().unwrap();
    assert_eq!(uninterrupted.db.outcomes.len(), n);

    let journal = temp_journal("cancel");
    let token = CancelToken::new();
    let mut sink = CancelAfter {
        remaining: 5,
        token: token.clone(),
    };
    let partial = Sweep::builder()
        .with_trials(trials(n))
        .with_injected_failures(3)
        .with_transient_failures(4)
        .with_journal(&journal)
        .with_cancel(token)
        .run_with(&mut sink)
        .unwrap();
    assert!(partial.degradation.cancelled);
    // Every terminal outcome the cancelled run produced reached the
    // journal before the engine returned (the flush-on-drain contract),
    // and everything else is accounted for as skipped.
    assert_eq!(
        read_journal(&journal).unwrap().len(),
        partial.stats.finished()
    );
    assert_eq!(
        partial.db.outcomes.len() + partial.degradation.skipped.len(),
        n
    );
    // The partial database is a subset of the uninterrupted run, not a
    // divergent one: every landed outcome matches byte for byte.
    let full_json = uninterrupted.db.to_json();
    for outcome in &partial.db.outcomes {
        let reference = uninterrupted
            .db
            .by_id(outcome.spec.id)
            .expect("cancelled run cannot invent trials");
        assert_eq!(
            serde_json::to_string(outcome).unwrap(),
            serde_json::to_string(reference).unwrap(),
            "trial {} diverged under cancellation",
            outcome.spec.id
        );
    }

    // Resume without the cancel token: the journal replays and the final
    // database is byte-identical to the uninterrupted run.
    let resumed = sweep_with_journal(trials(n), Some(&journal)).run().unwrap();
    assert_eq!(resumed.stats.replayed, partial.stats.finished());
    assert_eq!(resumed.db.to_json(), full_json);
    assert!(!resumed.degradation.is_degraded());
    std::fs::remove_file(&journal).ok();
}

#[test]
fn deadline_skips_identically_across_worker_counts() {
    let specs = trials(96);
    let budget_s: f64 = specs
        .iter()
        .map(hydronas_nas::trial_duration_s)
        .sum::<f64>()
        / 3.0;
    let run = |workers: usize| {
        Sweep::builder()
            .with_trials(specs.clone())
            .with_injected_failures(0)
            .with_max_wall_s(budget_s)
            .with_workers(workers)
            .run()
            .unwrap()
    };
    let serial = run(1);
    assert!(serial.degradation.deadline_exhausted);
    assert!(!serial.degradation.skipped.is_empty());
    for workers in [8, 32] {
        let parallel = run(workers);
        assert_eq!(
            parallel.db.to_json(),
            serial.db.to_json(),
            "{workers} workers changed the admitted database"
        );
        assert_eq!(
            parallel.degradation, serial.degradation,
            "{workers} workers changed the skipped set"
        );
    }
}

#[test]
fn deadline_cutoff_survives_a_resume() {
    // A deadline-limited run journals what it admitted; resuming with the
    // same budget replays it and re-skips the same suffix.
    let specs = trials(48);
    let budget_s: f64 = specs
        .iter()
        .map(hydronas_nas::trial_duration_s)
        .sum::<f64>()
        / 2.0;
    let journal = temp_journal("deadline");
    let run = || {
        Sweep::builder()
            .with_trials(specs.clone())
            .with_injected_failures(0)
            .with_max_wall_s(budget_s)
            .with_journal(&journal)
            .run()
            .unwrap()
    };
    let first = run();
    let second = run();
    assert_eq!(second.stats.replayed, first.stats.finished());
    assert_eq!(second.db.to_json(), first.db.to_json());
    assert_eq!(second.degradation.skipped, first.degradation.skipped);
    std::fs::remove_file(&journal).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any mix of injected chaos faults terminates with a coherent
    /// degradation report: every trial is either in the database or in
    /// the skipped set, failure counts partition the failed total, and
    /// the run is pure (same inputs, same bytes).
    #[test]
    fn chaos_always_terminates_with_a_coherent_report(
        seed in 0u64..1000,
        timeout_pm in 0u16..300,
        panic_pm in 0u16..300,
        transient_pm in 0u16..300,
        max_attempts in 1usize..4,
    ) {
        let specs = trials(24);
        let run = || {
            Sweep::builder()
                .with_trials(specs.clone())
                .with_injected_failures(0)
                .with_retry(RetryPolicy::new(max_attempts).with_backoff(0.5, 2.0))
                .with_chaos(
                    ChaosConfig::new(seed)
                        .with_timeouts(timeout_pm)
                        .with_panics(panic_pm)
                        .with_transients(transient_pm),
                )
                .run()
                .expect("chaos must never surface as an engine error")
        };
        let report = run();
        let d = &report.degradation;
        // No cancellation and no deadline: nothing may be skipped.
        prop_assert!(d.skipped.is_empty());
        prop_assert!(!d.cancelled && !d.deadline_exhausted);
        prop_assert_eq!(report.db.outcomes.len(), specs.len());
        prop_assert_eq!(
            report.stats.completed + report.stats.failed,
            specs.len()
        );
        // Failure causes partition the failed count.
        prop_assert_eq!(
            d.timeout_trials + d.transient_trials + d.invalid_trials,
            report.stats.failed
        );
        prop_assert!(d.backoff_sim_s >= 0.0);
        // Degradation flags stay truthful.
        prop_assert_eq!(
            d.is_degraded(),
            d.timeout_trials > 0
        );
        // Chaos is deterministic: the same fault mix reproduces the
        // same database and the same report.
        let again = run();
        prop_assert_eq!(report.db.to_json(), again.db.to_json());
        prop_assert_eq!(d, &again.degradation);
    }
}
