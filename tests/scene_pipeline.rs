//! Scene-level data pipeline integration: generate watershed scenes,
//! detect drainage crossings hydrologically, extract DEM tiles by
//! segmentation-style sampling, and train a CNN on them — the faithful
//! end-to-end analogue of the paper's data build.

use hydronas::prelude::*;
use hydronas_geodata::{Scene, SceneParams};

/// Builds a 1-channel DEM tile dataset from several scenes.
fn scene_dataset(scenes: usize, tile: usize, seed: u64) -> Dataset {
    let mut rng = TensorRng::seed_from_u64(seed);
    let mut data = Vec::new();
    let mut labels = Vec::new();
    for s in 0..scenes {
        let scene = Scene::generate(&SceneParams {
            seed: seed + s as u64,
            ..Default::default()
        });
        let (centers, tile_labels) = scene.sample_tile_centers(tile, &mut rng);
        for (&(x, y), &label) in centers.iter().zip(&tile_labels) {
            if let Some(dem) = scene.extract_dem_tile(x, y, tile) {
                // Per-tile zero-mean normalization (as the bulk pipeline).
                let mean: f32 = dem.iter().sum::<f32>() / dem.len() as f32;
                data.extend(dem.iter().map(|v| (v - mean) / 3.0));
                labels.push(label);
            }
        }
    }
    let n = labels.len();
    Dataset::new(Tensor::from_vec(data, &[n, 1, tile, tile]), labels)
}

#[test]
fn scenes_supply_enough_balanced_samples() {
    let data = scene_dataset(6, 24, 100);
    assert!(data.len() >= 40, "only {} tiles", data.len());
    let positives = data.labels.iter().filter(|&&l| l == 1).count();
    let frac = positives as f64 / data.len() as f64;
    assert!((0.35..=0.65).contains(&frac), "imbalanced: {frac}");
}

#[test]
fn cnn_learns_hydrologically_detected_crossings() {
    // The hard version of the task: tiles cut from whole scenes (DEM band
    // only), crossings found by flow accumulation rather than scripting.
    let data = scene_dataset(24, 24, 7);
    let arch = ArchConfig {
        in_channels: 1,
        kernel_size: 3,
        stride: 2,
        padding: 1,
        pool: None,
        initial_features: 8,
        num_classes: 2,
    };
    let config = TrainConfig {
        epochs: 15,
        batch_size: 8,
        learning_rate: 0.03,
        augment: true,
        ..Default::default()
    };
    let (mean_acc, folds) = kfold_cross_validate(&arch, &data, 2, &config);
    assert_eq!(folds.len(), 2);
    assert!(
        mean_acc > 55.0,
        "scene-trained CNN stuck at chance: {mean_acc:.1}%"
    );
}

#[test]
fn scene_tiles_center_on_the_crossing() {
    // Positive tiles must actually contain the detected crossing cell at
    // their center (the segmentation-centered property the synthesizer
    // mimics).
    let scene = Scene::generate(&SceneParams {
        seed: 3,
        ..Default::default()
    });
    let tile = 24;
    let mut rng = TensorRng::seed_from_u64(0);
    let (centers, labels) = scene.sample_tile_centers(tile, &mut rng);
    for (&(x, y), &label) in centers.iter().zip(&labels) {
        if label == 1 {
            assert!(
                scene.crossings.contains(&(x, y)),
                "positive center ({x},{y}) is not a crossing"
            );
            assert!(scene.extract_dem_tile(x, y, tile).is_some());
        }
    }
}
