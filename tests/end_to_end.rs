//! Cross-crate integration: a reduced experiment flowing through every
//! subsystem (space -> surrogate -> latency -> memory -> pareto ->
//! rendering).

use hydronas::prelude::*;
use hydronas_nas::space::full_grid;
use hydronas_nas::{run_experiment, TrialStatus};

fn one_combo_db(channels: usize, batch: usize, failures: usize) -> ExperimentDb {
    let trials: Vec<TrialSpec> = full_grid(&SearchSpace::paper())
        .into_iter()
        .filter(|t| t.combo.channels == channels && t.combo.batch_size == batch)
        .collect();
    assert_eq!(trials.len(), 288);
    run_experiment(
        &trials,
        &SurrogateEvaluator::default(),
        &SchedulerConfig {
            injected_failures: failures,
            ..Default::default()
        },
    )
}

#[test]
fn one_combination_produces_288_outcomes() {
    let db = one_combo_db(5, 16, 0);
    assert_eq!(db.outcomes.len(), 288);
    assert_eq!(db.valid().len(), 288);
    for o in db.valid() {
        assert!(o.accuracy > 50.0 && o.accuracy < 100.0);
        assert!(o.latency_ms > 0.0);
        assert!(o.memory_mb > 10.0);
        assert_eq!(o.fold_accuracies.len(), 5);
    }
}

#[test]
fn objectives_are_consistent_with_direct_computation() {
    // The scheduler's recorded latency/memory must equal what the
    // latency/graph crates produce directly for the same architecture.
    let db = one_combo_db(7, 8, 0);
    for o in db.valid().into_iter().step_by(41) {
        let graph = ModelGraph::from_arch(&o.spec.arch, 32).unwrap();
        let pred = predict_all(&graph);
        assert!((o.latency_ms - pred.mean_ms).abs() < 1e-9);
        let memory = serialized_size_bytes(&graph) as f64 / 1e6;
        assert!((o.memory_mb - memory).abs() < 1e-9);
    }
}

#[test]
fn front_members_are_mutually_non_dominated() {
    let db = one_combo_db(5, 16, 0);
    let front = db.pareto_outcomes();
    assert!(!front.is_empty());
    let senses = [
        Objective::Maximize,
        Objective::Minimize,
        Objective::Minimize,
    ];
    for a in &front {
        for b in &front {
            let pa = Point::new(a.spec.id, vec![a.accuracy, a.latency_ms, a.memory_mb]);
            let pb = Point::new(b.spec.id, vec![b.accuracy, b.latency_ms, b.memory_mb]);
            assert!(
                !hydronas_pareto::dominates(&pa, &pb, &senses),
                "front member {} dominates front member {}",
                a.spec.id,
                b.spec.id
            );
        }
    }
    // And every non-front valid outcome is dominated by someone.
    let front_ids: Vec<usize> = front.iter().map(|o| o.spec.id).collect();
    for o in db.valid() {
        if front_ids.contains(&o.spec.id) {
            continue;
        }
        let p = Point::new(o.spec.id, vec![o.accuracy, o.latency_ms, o.memory_mb]);
        let dominated = db.valid().iter().any(|q| {
            let pq = Point::new(q.spec.id, vec![q.accuracy, q.latency_ms, q.memory_mb]);
            hydronas_pareto::dominates(&pq, &p, &senses)
        });
        assert!(
            dominated,
            "outcome {} is non-dominated but off the front",
            o.spec.id
        );
    }
}

#[test]
fn failure_injection_excludes_trials_from_analysis() {
    let db = one_combo_db(5, 8, 5);
    assert_eq!(db.outcomes.len(), 288);
    assert_eq!(db.valid().len(), 283);
    let failed: Vec<_> = db
        .outcomes
        .iter()
        .filter(|o| matches!(o.status, TrialStatus::Failed(_)))
        .collect();
    assert_eq!(failed.len(), 5);
    // Failed trials never appear on the front.
    let front_ids: Vec<usize> = db.pareto_outcomes().iter().map(|o| o.spec.id).collect();
    for f in failed {
        assert!(!front_ids.contains(&f.spec.id));
    }
}

#[test]
fn rendered_tables_reflect_the_database() {
    let db = one_combo_db(5, 16, 0);
    let t3 = hydronas::tables::table3(&db);
    let r = db.objective_ranges();
    assert!(t3.contains(&format!("{:.2}", r.accuracy_max)));
    let t4 = hydronas::tables::table4(&db);
    assert_eq!(t4.lines().count(), db.pareto_outcomes().len() + 1);
    let f3 = hydronas::figures::figure3_csv(&db);
    assert_eq!(f3.lines().count(), db.valid().len() + 1);
}

#[test]
fn database_json_roundtrip_preserves_analysis() {
    let db = one_combo_db(7, 32, 3);
    let restored = ExperimentDb::from_json(&db.to_json()).unwrap();
    assert_eq!(restored.outcomes.len(), db.outcomes.len());
    let f1: Vec<usize> = db.pareto_outcomes().iter().map(|o| o.spec.id).collect();
    let f2: Vec<usize> = restored
        .pareto_outcomes()
        .iter()
        .map(|o| o.spec.id)
        .collect();
    assert_eq!(f1, f2);
}

#[test]
fn search_strategies_agree_with_grid_on_the_winner_family() {
    // Evolution on the surrogate should land in the same architecture
    // family the grid's front shows: k3, p<=1, f32.
    let combo = InputCombo {
        channels: 5,
        batch_size: 16,
    };
    let result = regularized_evolution(
        &SearchSpace::paper(),
        combo,
        &SurrogateEvaluator::default(),
        &EvolutionConfig {
            population: 12,
            sample_size: 4,
            budget: 96,
        },
        3,
    );
    let best = result.best_spec();
    // With a modest budget the exact stem varies with the noise draw (the
    // landscape has near-ties, e.g. k7/s1/p3+pool reaches within half a
    // point of the k3/s2/p1 optimum), but the width choice and a clear
    // margin over the stock baseline anchor (93.60 here) are robust.
    assert_eq!(best.arch.initial_features, 32, "best {:?}", best.arch);
    assert!(
        result.best_accuracy() > 94.0,
        "best {}",
        result.best_accuracy()
    );
}
