//! The int8 accuracy contract, end to end: train a small model on the
//! seeded drainage tiles, compile it into an fp32 plan and a true-int8
//! plan (per-channel weights, min/max activation calibration on training
//! tiles), and require the quantized plan to stay within 0.5% eval
//! accuracy and a bounded worst-case logit delta of the fp32 reference.
//!
//! This is the trained-model counterpart of the unit-level checks in
//! `hydronas_infer`: random weights have no decision margins, so only a
//! trained network makes "accuracy drop" a meaningful number.

use hydronas::prelude::*;
use hydronas_graph::CalibrationMethod;
use hydronas_nn::{CrossEntropyLoss, Optimizer, ParamVisitor, Sgd};

fn small_arch() -> ArchConfig {
    ArchConfig {
        in_channels: 5,
        kernel_size: 3,
        stride: 2,
        padding: 1,
        pool: None,
        initial_features: 8,
        num_classes: 2,
    }
}

/// The first `n` tiles of a set as one NCHW batch.
fn tile_batch(set: &TileSet, n: usize) -> Tensor {
    let n = n.min(set.len());
    let dims = set.features.dims();
    let sample = dims[1] * dims[2] * dims[3];
    Tensor::from_vec(
        set.features.as_slice()[..n * sample].to_vec(),
        &[n, dims[1], dims[2], dims[3]],
    )
}

/// Deterministic training: sequential batches, fixed seed, no shuffle.
fn train_model(arch: &ArchConfig, set: &TileSet, epochs: usize) -> ResNet {
    let mut rng = TensorRng::seed_from_u64(17);
    let mut model = ResNet::new(arch, &mut rng);
    let mut opt = Sgd::new(0.01, 0.9, 1e-4);
    let loss_fn = CrossEntropyLoss;
    let dims = set.features.dims();
    let sample = dims[1] * dims[2] * dims[3];
    let src = set.features.as_slice();
    let n = set.len();
    let batch = 16.min(n);
    for _ in 0..epochs {
        let mut i = 0usize;
        while i < n {
            let j = (i + batch).min(n);
            let x = Tensor::from_vec(
                src[i * sample..j * sample].to_vec(),
                &[j - i, dims[1], dims[2], dims[3]],
            );
            model.zero_grad();
            let logits = model.forward(&x, true);
            let (loss, grad) = loss_fn.forward_backward(&logits, &set.labels[i..j]);
            assert!(loss.is_finite(), "training diverged");
            model.backward(&grad);
            opt.step(&mut model);
            i = j;
        }
    }
    model
}

/// Accuracy and flattened logits of a plan over a tile set.
fn evaluate(plan: &ExecutionPlan, set: &TileSet) -> (f64, Vec<f32>) {
    let dims = set.features.dims();
    let sample = dims[1] * dims[2] * dims[3];
    let src = set.features.as_slice();
    let classes = plan.arch().num_classes;
    let mut logits = Vec::with_capacity(set.len() * classes);
    let mut i = 0usize;
    while i < set.len() {
        let j = (i + 32).min(set.len());
        let x = Tensor::from_vec(
            src[i * sample..j * sample].to_vec(),
            &[j - i, dims[1], dims[2], dims[3]],
        );
        logits.extend_from_slice(plan.run_batch(&x).as_slice());
        i = j;
    }
    let mut correct = 0usize;
    for (row, &label) in logits.chunks_exact(classes).zip(&set.labels) {
        let pred = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(k, _)| k)
            .expect("two classes");
        correct += usize::from(pred == label);
    }
    (correct as f64 / set.len() as f64, logits)
}

#[test]
fn quantized_plan_holds_eval_accuracy_within_half_a_percent() {
    let tile = 32usize;
    let train = build_dataset(&study_regions()[..1], ChannelMode::Five, tile, 0.05, 61);
    let eval = build_dataset(&study_regions()[..1], ChannelMode::Five, tile, 0.1, 62);
    let model = train_model(&small_arch(), &train, 4);

    let fp32 = ExecutionPlan::builder(&model)
        .build()
        .expect("fp32 plan builds without a scheme");
    let calib = tile_batch(&train, 32);
    let int8 = ExecutionPlan::builder(&model)
        .numerics(Numerics::QuantizedInt8)
        .quantization(
            QuantizationScheme::per_channel().calibrate(CalibrationMethod::MinMax, &calib),
        )
        .build()
        .expect("int8 plan builds from a calibrated scheme");

    // The quantized plan really stores int8: >= 3x smaller weights.
    let ratio = fp32.weight_bytes() as f64 / int8.weight_bytes() as f64;
    assert!(
        (3.0..4.2).contains(&ratio),
        "int8 weight compression {ratio:.2}x outside the expected 3..4.2x"
    );

    let (fp32_acc, fp32_logits) = evaluate(&fp32, &eval);
    let (int8_acc, int8_logits) = evaluate(&int8, &eval);
    assert!(
        fp32_acc > 0.55,
        "training never got above chance ({fp32_acc:.3}); the accuracy-drop bound would be vacuous"
    );

    let drop = fp32_acc - int8_acc;
    assert!(
        drop <= 0.005,
        "int8 eval accuracy dropped {drop:.4} ({int8_acc:.4} vs fp32 {fp32_acc:.4}, \
         {} eval tiles) — the contract allows at most 0.005",
        eval.len()
    );

    let worst = fp32_logits
        .iter()
        .zip(&int8_logits)
        .map(|(p, q)| (p - q).abs())
        .fold(0.0f32, f32::max);
    assert!(
        worst < 1.0,
        "worst int8 logit delta {worst:.4} is out of bounds for calibrated per-channel quantization"
    );
}
