//! Consistency invariants that span crate boundaries: the trainable model
//! (`nn`), the static IR (`graph`), the latency predictor (`latency`),
//! and the serializer must all describe the same architecture.

use hydronas::prelude::*;
use hydronas_latency::{decompose, KernelKind};
use hydronas_nn::ParamVisitor;

fn sample_space() -> Vec<ArchConfig> {
    let mut archs = Vec::new();
    for kernel_size in [3, 7] {
        for pool in [
            None,
            Some(PoolConfig {
                kernel: 3,
                stride: 2,
            }),
        ] {
            for feat in [4, 8] {
                archs.push(ArchConfig {
                    in_channels: 5,
                    kernel_size,
                    stride: 2,
                    padding: 1,
                    pool,
                    initial_features: feat,
                    num_classes: 2,
                });
            }
        }
    }
    archs
}

#[test]
fn trainable_model_and_ir_agree_on_parameters() {
    let mut rng = TensorRng::seed_from_u64(1);
    for arch in sample_space() {
        let mut model = ResNet::new(&arch, &mut rng);
        let graph = ModelGraph::from_arch(&arch, 32).unwrap();
        assert_eq!(
            model.num_params() as u64,
            model_cost(&graph).params,
            "{:?}",
            arch
        );
    }
}

#[test]
fn serialized_model_holds_exactly_the_trained_weights() {
    let arch = ArchConfig {
        in_channels: 5,
        kernel_size: 3,
        stride: 2,
        padding: 1,
        pool: None,
        initial_features: 4,
        num_classes: 2,
    };
    let mut rng = TensorRng::seed_from_u64(2);
    let mut model = ResNet::new(&arch, &mut rng);
    let graph = ModelGraph::from_arch(&arch, 32).unwrap();

    let flat = model.flat_params();
    let blob = hydronas_graph::serialize_model(&graph, Some(&flat));
    assert_eq!(blob.len() as u64, serialized_size_bytes(&graph));

    let restored = hydronas_graph::deserialize_model(&blob).unwrap();
    assert_eq!(restored.arch, arch);
    let total: usize = restored.initializers.iter().map(|(_, b)| b.len()).sum();
    assert_eq!(total, flat.len());

    // Load the restored weights into a fresh model: outputs must match.
    let restored_flat: Vec<f32> = restored
        .initializers
        .iter()
        .flat_map(|(_, b)| b.iter().copied())
        .collect();
    let mut rng2 = TensorRng::seed_from_u64(99);
    let mut model2 = ResNet::new(&arch, &mut rng2);
    model2.load_flat_params(&restored_flat);
    let x = hydronas_tensor::uniform(&[1, 5, 32, 32], -1.0, 1.0, &mut rng2);
    assert_eq!(model.forward(&x, false), model2.forward(&x, false));
}

#[test]
fn graph_node_count_tracks_architecture_options() {
    for arch in sample_space() {
        let graph = ModelGraph::from_arch(&arch, 32).unwrap();
        let expected_pool = usize::from(arch.pool.is_some());
        assert_eq!(
            graph.count_kind(|k| matches!(k, hydronas_graph::NodeKind::MaxPool { .. })),
            expected_pool
        );
        let kernels = decompose(&graph);
        assert_eq!(
            kernels
                .iter()
                .filter(|k| k.kind == KernelKind::MaxPool)
                .count(),
            expected_pool
        );
        // 20 convs always (stem + 16 + 3 projections).
        assert_eq!(
            kernels
                .iter()
                .filter(|k| k.kind == KernelKind::ConvBnRelu)
                .count(),
            20
        );
    }
}

#[test]
fn latency_prediction_is_monotone_in_width() {
    // Wider models stream more weights, so every device's latency must be
    // monotone in initial_features (same stem geometry).
    for pool in [
        None,
        Some(PoolConfig {
            kernel: 3,
            stride: 2,
        }),
    ] {
        let mut last = 0.0;
        for feat in [32, 48, 64] {
            let arch = ArchConfig {
                in_channels: 5,
                kernel_size: 3,
                stride: 2,
                padding: 1,
                pool,
                initial_features: feat,
                num_classes: 2,
            };
            let graph = ModelGraph::from_arch(&arch, 32).unwrap();
            let pred = predict_all(&graph);
            assert!(
                pred.mean_ms > last,
                "feat {feat}: {} <= {last}",
                pred.mean_ms
            );
            last = pred.mean_ms;
        }
    }
}

#[test]
fn memory_is_monotone_in_width_and_independent_of_stride() {
    let base = ArchConfig {
        in_channels: 5,
        kernel_size: 3,
        stride: 2,
        padding: 1,
        pool: None,
        initial_features: 32,
        num_classes: 2,
    };
    let size = |arch: &ArchConfig| serialized_size_bytes(&ModelGraph::from_arch(arch, 32).unwrap());
    let s32 = size(&base);
    let s48 = size(&ArchConfig {
        initial_features: 48,
        ..base
    });
    let s64 = size(&ArchConfig {
        initial_features: 64,
        ..base
    });
    assert!(s32 < s48 && s48 < s64);
    // Stride changes activations, not parameters.
    let strided = size(&ArchConfig { stride: 1, ..base });
    assert_eq!(s32, strided);
}

#[test]
fn dataset_feeds_models_of_matching_channel_count() {
    for (mode, channels) in [(ChannelMode::Five, 5), (ChannelMode::Seven, 7)] {
        let tiles = build_dataset(&study_regions()[..1], mode, 16, 0.002, 3);
        let arch = ArchConfig {
            in_channels: channels,
            kernel_size: 3,
            stride: 2,
            padding: 1,
            pool: None,
            initial_features: 4,
            num_classes: 2,
        };
        let mut rng = TensorRng::seed_from_u64(0);
        let mut model = ResNet::new(&arch, &mut rng);
        let logits = model.forward(&tiles.features, false);
        assert_eq!(logits.dims(), &[tiles.labels.len(), 2]);
        assert!(!logits.has_non_finite());
    }
}
