//! The headline reproduction test: run the full 1,728-trial experiment
//! and check every table/figure against the paper's reported structure.

use hydronas::prelude::*;

/// The full experiment is deterministic, so run it once for all checks.
fn artifacts() -> &'static ReproArtifacts {
    use std::sync::OnceLock;
    static CELL: OnceLock<ReproArtifacts> = OnceLock::new();
    CELL.get_or_init(|| ReproConfig::default().run())
}

#[test]
fn trial_census_matches_paper() {
    let a = artifacts();
    assert_eq!(a.db.outcomes.len(), 1728, "6 combos x 288 configurations");
    assert_eq!(a.db.valid().len(), 1717, "the paper's valid outcome count");
}

#[test]
fn table3_ranges_match_paper_bands() {
    // Paper Table 3: accuracy 76.19-96.13 %, latency 8.13-249.56 ms,
    // memory 11.18-44.69 MB. Our simulators match the shape, not digits.
    let r = artifacts().db.objective_ranges();
    assert!(
        (72.0..80.0).contains(&r.accuracy_min),
        "acc min {}",
        r.accuracy_min
    );
    assert!(
        (94.0..98.5).contains(&r.accuracy_max),
        "acc max {}",
        r.accuracy_max
    );
    assert!(
        (6.0..14.0).contains(&r.latency_min_ms),
        "lat min {}",
        r.latency_min_ms
    );
    assert!(
        (150.0..320.0).contains(&r.latency_max_ms),
        "lat max {}",
        r.latency_max_ms
    );
    assert!(
        (11.0..11.5).contains(&r.memory_min_mb),
        "mem min {}",
        r.memory_min_mb
    );
    assert!(
        (44.4..45.0).contains(&r.memory_max_mb),
        "mem max {}",
        r.memory_max_mb
    );
}

#[test]
fn table4_front_structure_matches_paper() {
    // Paper Table 4: five non-dominated solutions, all 11.18 MB
    // (initial_output_feature 32), kernel 3 dominant, padding <= 3,
    // no-pool rows at the low latency level and pool rows at ~2x latency
    // with much larger lat_std.
    let front = artifacts().db.pareto_outcomes();
    assert_eq!(front.len(), 5, "five non-dominated solutions");
    for o in &front {
        assert_eq!(o.spec.arch.initial_features, 32, "all rows minimum-width");
        assert!(o.memory_mb < 11.5, "all rows at the minimum memory level");
        assert_eq!(o.spec.arch.stride, 2, "larger stride everywhere (Fig. 4)");
    }
    let (pool, no_pool): (
        Vec<&hydronas_nas::TrialOutcome>,
        Vec<&hydronas_nas::TrialOutcome>,
    ) = front
        .iter()
        .copied()
        .partition(|o| o.spec.arch.pool.is_some());
    assert!(
        !pool.is_empty() && !no_pool.is_empty(),
        "both pool families appear"
    );
    let pool_lat = pool.iter().map(|o| o.latency_ms).sum::<f64>() / pool.len() as f64;
    let no_pool_lat = no_pool.iter().map(|o| o.latency_ms).sum::<f64>() / no_pool.len() as f64;
    assert!(
        pool_lat > 1.4 * no_pool_lat,
        "pool rows ~2x latency: {pool_lat:.1} vs {no_pool_lat:.1}"
    );
    let pool_std = pool.iter().map(|o| o.latency_std_ms).sum::<f64>() / pool.len() as f64;
    let no_pool_std = no_pool.iter().map(|o| o.latency_std_ms).sum::<f64>() / no_pool.len() as f64;
    assert!(pool_std > 2.0 * no_pool_std, "pool rows inflate lat_std");
    // Accuracy stays comparable to the baselines (93.97-96.13 in paper).
    for o in &front {
        assert!(
            (93.0..98.0).contains(&o.accuracy),
            "front acc {}",
            o.accuracy
        );
    }
}

#[test]
fn table5_reproduces_baseline_anchors() {
    // The six benchmark rows are anchored at the paper's Table 5 values
    // (fold noise moves the mean by ~0.25 points).
    let a = artifacts();
    let anchors = [
        (5, 8, 92.90),
        (5, 16, 93.60),
        (5, 32, 89.67),
        (7, 8, 94.76),
        (7, 16, 95.37),
        (7, 32, 94.51),
    ];
    for (channels, batch, want) in anchors {
        let row =
            a.db.valid()
                .into_iter()
                .find(|o| {
                    o.spec.arch == ArchConfig::baseline(channels)
                        && o.spec.combo.batch_size == batch
                        && o.spec.kernel_size_pool == 3
                        && o.spec.stride_pool == 2
                })
                .unwrap_or_else(|| panic!("baseline {channels}ch b{batch} missing"));
        assert!(
            (row.accuracy - want).abs() < 1.0,
            "{channels}ch b{batch}: {} vs paper {want}",
            row.accuracy
        );
        // Latency ~32 ms, memory ~44.7 MB like the paper.
        assert!(
            (25.0..40.0).contains(&row.latency_ms),
            "lat {}",
            row.latency_ms
        );
        assert!(
            (44.4..45.0).contains(&row.memory_mb),
            "mem {}",
            row.memory_mb
        );
    }
}

#[test]
fn non_dominated_models_beat_baseline_everywhere_but_accuracy() {
    // The paper's key claim: the front models have lower latency, more
    // consistent latency, and less memory than stock ResNet-18, at
    // comparable-or-better accuracy.
    let a = artifacts();
    let front = a.db.pareto_outcomes();
    for (channels, batch) in [(5, 8), (5, 16), (5, 32), (7, 8), (7, 16), (7, 32)] {
        let base =
            a.db.valid()
                .into_iter()
                .find(|o| {
                    o.spec.arch == ArchConfig::baseline(channels)
                        && o.spec.combo.batch_size == batch
                        && o.spec.kernel_size_pool == 3
                        && o.spec.stride_pool == 2
                })
                .unwrap();
        for o in &front {
            assert!(
                o.latency_ms < base.latency_ms,
                "front latency beats baseline"
            );
            assert!(
                o.latency_std_ms < base.latency_std_ms,
                "front lat_std beats baseline"
            );
            assert!(o.memory_mb < base.memory_mb, "front memory beats baseline");
        }
        // Best front accuracy >= this baseline's accuracy.
        let best = front
            .iter()
            .map(|o| o.accuracy)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(best + 0.5 >= base.accuracy, "front accuracy is on par");
    }
}

#[test]
fn table2_reproduction_in_rendered_artifacts() {
    let a = artifacts();
    assert!(a.table2.contains("cortexA76cpu"));
    assert!(a.table2.contains("myriadvpu"));
    // The myriad row reports a clearly lower accuracy (paper: 83.4 vs 99).
    let myriad_line = a.table2.lines().find(|l| l.contains("myriadvpu")).unwrap();
    let pct: f64 = myriad_line
        .split_whitespace()
        .last()
        .unwrap()
        .trim_end_matches('%')
        .parse()
        .unwrap();
    assert!((75.0..92.0).contains(&pct), "myriad {pct}");
}

#[test]
fn discussion_wall_clock_matches_section5() {
    // 5ch/b8 ~ 9h20m, 7ch/b8 ~ 29h03m, ratio ~3.1.
    let a = artifacts();
    let hours = |needle: &str| -> f64 {
        let line = a.discussion.lines().find(|l| l.contains(needle)).unwrap();
        let hm = line.split(": ").nth(1).unwrap();
        let h: f64 = hm.split('h').next().unwrap().trim().parse().unwrap();
        let m: f64 = hm
            .split('h')
            .nth(1)
            .unwrap()
            .trim()
            .trim_end_matches('m')
            .parse()
            .unwrap();
        h + m / 60.0
    };
    let t5 = hours("5 channels, batch  8");
    let t7 = hours("7 channels, batch  8");
    assert!((7.5..12.0).contains(&t5), "5ch/b8 {t5:.2} h");
    assert!((23.0..35.0).contains(&t7), "7ch/b8 {t7:.2} h");
    assert!((2.6..3.6).contains(&(t7 / t5)), "ratio {:.2}", t7 / t5);
}

#[test]
fn figure_exports_cover_the_population() {
    let a = artifacts();
    assert_eq!(a.figure3_csv.lines().count(), 1717 + 1);
    assert_eq!(
        a.figure4_csv.lines().count(),
        a.db.pareto_outcomes().len() + 1
    );
    assert!(a.figure1.contains("stem.conv"));
    assert!(a.figure2.contains("288 configurations"));
}
