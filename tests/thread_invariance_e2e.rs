//! End-to-end thread-count invariance: the deterministic compute pool
//! (`hydronas_tensor::parallel`) must not change a single bit of any
//! pipeline artifact. Training losses, served logits, the deterministic
//! metric sections, and the sweep journal are captured at 1, 2, and 8
//! compute threads and compared byte-for-byte.
//!
//! The compute-thread count is process-global, so every test takes
//! [`config_lock`] before touching it and restores the single-thread
//! default on exit. Telemetry sessions are process-exclusive and the
//! lock also keeps them from overlapping.

use hydronas::prelude::*;
use hydronas_nas::space::{full_grid, SearchSpace};
use std::sync::{Arc, Mutex, OnceLock};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn config_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn bits(x: &[f32]) -> Vec<u32> {
    x.iter().map(|v| v.to_bits()).collect()
}

/// Runs `f` once per thread count and asserts every capture matches the
/// single-thread reference.
fn assert_thread_invariant<T: PartialEq + std::fmt::Debug>(what: &str, f: impl Fn() -> T) {
    let mut reference = None;
    for threads in THREAD_COUNTS {
        set_compute_threads(threads);
        let got = f();
        match &reference {
            None => reference = Some(got),
            Some(want) => assert_eq!(want, &got, "{what} diverged at {threads} threads"),
        }
    }
    set_compute_threads(1);
}

fn tiny_arch() -> ArchConfig {
    let mut arch = ArchConfig::baseline(5);
    arch.initial_features = 4;
    arch
}

fn tiny_dataset(seed: u64) -> Dataset {
    let set = build_dataset(&study_regions()[..1], ChannelMode::Five, 8, 0.002, seed);
    Dataset::new(set.features, set.labels)
}

#[test]
fn training_losses_and_report_are_thread_count_invariant() {
    let _guard = config_lock();
    let train_set = tiny_dataset(9);
    let val_set = tiny_dataset(10);
    let config = TrainConfig {
        epochs: 2,
        batch_size: 4,
        ..TrainConfig::default()
    };
    assert_thread_invariant("training fingerprint", || {
        let out = train(&tiny_arch(), &train_set, &val_set, &config);
        assert!(!out.diverged, "training must stay finite");
        (bits(&out.epoch_losses), format!("{:?}", out.report))
    });
}

#[test]
fn served_logits_and_metric_sections_are_thread_count_invariant() {
    let _guard = config_lock();
    let plan = {
        let mut rng = TensorRng::seed_from_u64(7);
        Arc::new(
            ExecutionPlan::builder(&ResNet::new(&tiny_arch(), &mut rng))
                .build()
                .unwrap(),
        )
    };
    let inputs: Vec<Tensor> = (0..6)
        .map(|i| {
            let mut rng = TensorRng::seed_from_u64(100 + i);
            hydronas_tensor::uniform(&[5, 16, 16], -1.0, 1.0, &mut rng)
        })
        .collect();
    assert_thread_invariant("served logits + metric sections", || {
        let session = session();
        let logits: Vec<Vec<u32>> = {
            let engine = Engine::start(
                plan.clone(),
                EngineConfig::builder()
                    .workers(2)
                    .max_batch(4)
                    .tick_us(50)
                    .build()
                    .unwrap(),
            );
            inputs
                .iter()
                .map(|x| bits(&engine.infer(x.clone()).unwrap().logits))
                .collect()
        }; // drop joins engine workers before the metrics snapshot
        let m = session.metrics();
        // Arena counters are per-thread cache statistics and pool
        // counters/histograms are scheduling statistics; both scale
        // with thread count by design. Everything else is part of the
        // determinism contract.
        let counters: std::collections::BTreeMap<String, u64> = m
            .counters
            .iter()
            .filter(|(k, _)| !k.contains(".arena.") && !k.contains(".pool."))
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        let histogram_keys: Vec<String> = m
            .histograms
            .keys()
            .filter(|k| !k.contains(".pool."))
            .cloned()
            .collect();
        (
            logits,
            serde_json::to_string(&counters).unwrap(),
            serde_json::to_string(&m.gauges).unwrap(),
            histogram_keys,
        )
    });
}

#[test]
fn sweep_journal_is_thread_count_invariant() {
    let _guard = config_lock();
    let trials: Vec<TrialSpec> = full_grid(&SearchSpace::paper())
        .into_iter()
        .filter(|t| t.combo.channels == 5 && t.combo.batch_size == 16)
        .take(24)
        .collect();
    let dir = std::env::temp_dir().join(format!("hydronas-ti-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    assert_thread_invariant("sweep journal bytes", || {
        let path = dir.join(format!("journal-{}.jsonl", compute_threads()));
        let _ = std::fs::remove_file(&path); // a leftover journal would replay
        let report = Sweep::builder()
            .with_trials(trials.clone())
            .with_evaluator(SurrogateEvaluator::default())
            .with_journal(&path)
            .run()
            .expect("sweep runs");
        assert_eq!(report.db.outcomes.len(), trials.len());
        (std::fs::read(&path).unwrap(), report.db.to_json())
    });
    let _ = std::fs::remove_dir_all(&dir);
}
