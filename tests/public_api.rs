//! Public-API snapshot of the `hydronas` facade.
//!
//! Every item the prelude promises is referenced here by path, so
//! renaming or dropping an export is a compile error in this test long
//! before any downstream user hits it. The `EXPECTED` list doubles as a
//! reviewable, sorted snapshot: adding an export means adding a line,
//! and the test fails if the list loses its order or gains duplicates.

#![allow(unused_imports)]

use hydronas::prelude;

/// Compile-time presence check: each alias fails to build if the export
/// moves or changes kind (type vs function vs trait).
#[allow(dead_code)]
mod types {
    use hydronas::prelude;

    pub type A01 = prelude::ArchConfig;
    pub type A02 = prelude::CalibrationMethod;
    pub type A03 = prelude::CancelToken;
    pub type A04 = prelude::ChannelMode;
    pub type A05 = prelude::ChaosConfig;
    pub type A06 = prelude::ChaosFault;
    pub type A07 = prelude::CollectingSink;
    pub type A08 = prelude::Dataset;
    pub type A09 = prelude::DegradationReport;
    pub type A10 = prelude::DeviceId;
    pub type A11 = prelude::DrainStats;
    pub type A12 = prelude::EnergyPrediction;
    pub type A13 = prelude::Engine;
    pub type A14 = prelude::EngineConfig;
    pub type A15 = prelude::EngineConfigBuilder;
    pub type A16 = prelude::EngineStats;
    pub type A17 = prelude::EvolutionConfig;
    pub type A18 = prelude::ExecutionPlan;
    pub type A19 = prelude::ExperimentDb;
    pub type A20 = prelude::FailureCause;
    pub type A21 = prelude::Gauge;
    pub type A22 = prelude::GraphError;
    pub type A23 = prelude::HydroNasError;
    pub type A24 = prelude::InferError;
    pub type A25 = prelude::InferRequest;
    pub type A26 = prelude::InputCombo;
    pub type A27 = prelude::LatencyPrediction;
    pub type A28 = prelude::LayerCost;
    pub type A29 = prelude::LayerProfile;
    pub type A30 = prelude::LrSchedule;
    pub type A31 = prelude::MetricsError;
    pub type A32 = prelude::MetricsSnapshot;
    pub type A33 = prelude::ModelGraph;
    pub type A34 = prelude::ModelImportError;
    pub type A35 = prelude::Nsga2Config;
    pub type A36 = prelude::Numerics;
    pub type A37 = prelude::Objective;
    pub type A38 = prelude::OnnxError;
    pub type A39 = prelude::PlanBuilder<'static>;
    pub type A40 = prelude::PlanConfig;
    pub type A41 = prelude::Point;
    pub type A42 = prelude::PoolConfig;
    pub type A43 = prelude::Precision;
    pub type A44 = prelude::Prediction;
    pub type A45 = prelude::PredictionHandle;
    pub type A46 = prelude::QuantileHistogram;
    pub type A47 = prelude::QuantizationScheme;
    pub type A48 = prelude::RealTrainer;
    pub type A49 = prelude::ReproArtifacts;
    pub type A50 = prelude::ReproConfig;
    pub type A51 = prelude::ResNet;
    pub type A52 = prelude::RetryConfig;
    pub type A53 = prelude::RetryPolicy;
    pub type A54 = prelude::RunControl;
    pub type A55 = prelude::SchedulerConfig;
    pub type A56 = prelude::SearchSpace;
    pub type A57 = prelude::Session;
    pub type A58 = prelude::ShedPolicy;
    pub type A59 = prelude::StderrTicker;
    pub type A60 = prelude::SurrogateEvaluator;
    pub type A61 = prelude::Sweep;
    pub type A62 = prelude::SweepBuilder;
    pub type A63 = prelude::SweepError;
    pub type A64 = prelude::SweepEvent<'static>;
    pub type A65 = prelude::SweepReport;
    pub type A66 = prelude::SweepStats;
    pub type A67 = prelude::Tensor;
    pub type A68 = prelude::TensorRng;
    pub type A69 = prelude::TileSet;
    pub type A70 = prelude::TrainConfig;
    pub type A71 = prelude::TrialFailure;
    pub type A72 = prelude::TrialOutcome;
    pub type A73 = prelude::TrialSpec;

    pub trait UsesTraits: prelude::Evaluator + prelude::ProgressSink {}
}

/// Compile-time presence check for free functions: binding each by path
/// fails to build the moment an export is renamed or dropped.
#[test]
fn prelude_functions_exist() {
    let _ = prelude::augment_batch;
    let _ = prelude::build_dataset;
    let _ = prelude::build_paper_dataset;
    let _ = prelude::compute_threads;
    let _ = prelude::kernel_probe;
    let _ = prelude::kfold_cross_validate;
    let _ = prelude::kfold_cross_validate_with_cancel;
    let _ = prelude::makespan_lpt;
    let _ = prelude::markdown_report;
    let _ = prelude::metrics_json;
    let _ = prelude::pareto_front;
    let _ = prelude::predict_all;
    let _ = prelude::predict_energy;
    let _ = prelude::profile_trial;
    let _ = prelude::random_search;
    let _ = prelude::read_journal;
    let _ = prelude::regularized_evolution;
    let _ = prelude::run_full_grid;
    let _ = prelude::serialized_size_bytes;
    let _ = prelude::session;
    let _ = prelude::set_compute_threads;
    let _ = prelude::study_regions;
    let _ = prelude::train;
    let _ = prelude::train_with_cancel;
    let _ = prelude::validate_table2;
}

/// The reviewable snapshot: sorted, duplicate-free names of the types
/// pinned above. Changing the public surface means editing this list in
/// the same commit — which is exactly the review hook we want.
#[test]
fn type_snapshot_is_sorted_and_duplicate_free() {
    const EXPECTED: &[&str] = &[
        "ArchConfig",
        "CalibrationMethod",
        "CancelToken",
        "ChannelMode",
        "ChaosConfig",
        "ChaosFault",
        "CollectingSink",
        "Dataset",
        "DegradationReport",
        "DeviceId",
        "DrainStats",
        "EnergyPrediction",
        "Engine",
        "EngineConfig",
        "EngineConfigBuilder",
        "EngineStats",
        "EvolutionConfig",
        "ExecutionPlan",
        "ExperimentDb",
        "FailureCause",
        "Gauge",
        "GraphError",
        "HydroNasError",
        "InferError",
        "InferRequest",
        "InputCombo",
        "LatencyPrediction",
        "LayerCost",
        "LayerProfile",
        "LrSchedule",
        "MetricsError",
        "MetricsSnapshot",
        "ModelGraph",
        "ModelImportError",
        "Nsga2Config",
        "Numerics",
        "Objective",
        "OnnxError",
        "PlanBuilder",
        "PlanConfig",
        "Point",
        "PoolConfig",
        "Precision",
        "Prediction",
        "PredictionHandle",
        "QuantileHistogram",
        "QuantizationScheme",
        "RealTrainer",
        "ReproArtifacts",
        "ReproConfig",
        "ResNet",
        "RetryConfig",
        "RetryPolicy",
        "RunControl",
        "SchedulerConfig",
        "SearchSpace",
        "Session",
        "ShedPolicy",
        "StderrTicker",
        "SurrogateEvaluator",
        "Sweep",
        "SweepBuilder",
        "SweepError",
        "SweepEvent",
        "SweepReport",
        "SweepStats",
        "Tensor",
        "TensorRng",
        "TileSet",
        "TrainConfig",
        "TrialFailure",
        "TrialOutcome",
        "TrialSpec",
    ];
    for pair in EXPECTED.windows(2) {
        assert!(
            pair[0] < pair[1],
            "snapshot must stay sorted and duplicate-free: {} >= {}",
            pair[0],
            pair[1]
        );
    }
    // One aliased type per snapshot row (plus the two traits pinned in
    // `types::UsesTraits`).
    assert_eq!(EXPECTED.len(), 73);
}

/// The error taxonomy stays typed: the facade error wraps each
/// subsystem's error and every conversion compiles.
#[test]
fn hydronas_error_wraps_every_subsystem() {
    use hydronas::HydroNasError;
    let from_onnx: HydroNasError = prelude::OnnxError::BadMagic.into();
    let from_io: HydroNasError = std::io::Error::other("disk on fire").into();
    for err in [from_onnx, from_io] {
        assert!(std::error::Error::source(&err).is_some(), "{err}");
    }
}
