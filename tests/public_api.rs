//! Public-API snapshot of the `hydronas` facade.
//!
//! Every item the prelude promises is referenced here by path, so
//! renaming or dropping an export is a compile error in this test long
//! before any downstream user hits it. The `EXPECTED` list doubles as a
//! reviewable, sorted snapshot: adding an export means adding a line,
//! and the test fails if the list loses its order or gains duplicates.

#![allow(unused_imports)]

use hydronas::prelude;

/// Compile-time presence check: each alias fails to build if the export
/// moves or changes kind (type vs function vs trait).
#[allow(dead_code)]
mod types {
    use hydronas::prelude;

    pub type A01 = prelude::ArchConfig;
    pub type A02 = prelude::CancelToken;
    pub type A03 = prelude::ChannelMode;
    pub type A04 = prelude::ChaosConfig;
    pub type A05 = prelude::ChaosFault;
    pub type A06 = prelude::CollectingSink;
    pub type A07 = prelude::Dataset;
    pub type A08 = prelude::DegradationReport;
    pub type A09 = prelude::DeviceId;
    pub type A10 = prelude::DrainStats;
    pub type A11 = prelude::EnergyPrediction;
    pub type A12 = prelude::Engine;
    pub type A13 = prelude::EngineConfig;
    pub type A14 = prelude::EngineConfigBuilder;
    pub type A15 = prelude::EngineStats;
    pub type A16 = prelude::EvolutionConfig;
    pub type A17 = prelude::ExecutionPlan;
    pub type A18 = prelude::ExperimentDb;
    pub type A19 = prelude::FailureCause;
    pub type A20 = prelude::Gauge;
    pub type A21 = prelude::GraphError;
    pub type A22 = prelude::HydroNasError;
    pub type A23 = prelude::InferError;
    pub type A24 = prelude::InferRequest;
    pub type A25 = prelude::InputCombo;
    pub type A26 = prelude::LatencyPrediction;
    pub type A27 = prelude::LayerCost;
    pub type A28 = prelude::LayerProfile;
    pub type A29 = prelude::LrSchedule;
    pub type A30 = prelude::MetricsError;
    pub type A31 = prelude::MetricsSnapshot;
    pub type A32 = prelude::ModelGraph;
    pub type A33 = prelude::ModelImportError;
    pub type A34 = prelude::Nsga2Config;
    pub type A35 = prelude::Numerics;
    pub type A36 = prelude::Objective;
    pub type A37 = prelude::OnnxError;
    pub type A38 = prelude::PlanConfig;
    pub type A39 = prelude::Point;
    pub type A40 = prelude::PoolConfig;
    pub type A41 = prelude::Precision;
    pub type A42 = prelude::Prediction;
    pub type A43 = prelude::PredictionHandle;
    pub type A44 = prelude::QuantileHistogram;
    pub type A45 = prelude::RealTrainer;
    pub type A46 = prelude::ReproArtifacts;
    pub type A47 = prelude::ReproConfig;
    pub type A48 = prelude::ResNet;
    pub type A49 = prelude::RetryConfig;
    pub type A50 = prelude::RetryPolicy;
    pub type A51 = prelude::RunControl;
    pub type A52 = prelude::SchedulerConfig;
    pub type A53 = prelude::SearchSpace;
    pub type A54 = prelude::Session;
    pub type A55 = prelude::ShedPolicy;
    pub type A56 = prelude::StderrTicker;
    pub type A57 = prelude::SurrogateEvaluator;
    pub type A58 = prelude::Sweep;
    pub type A59 = prelude::SweepBuilder;
    pub type A60 = prelude::SweepError;
    pub type A61 = prelude::SweepEvent<'static>;
    pub type A62 = prelude::SweepReport;
    pub type A63 = prelude::SweepStats;
    pub type A64 = prelude::Tensor;
    pub type A65 = prelude::TensorRng;
    pub type A66 = prelude::TileSet;
    pub type A67 = prelude::TrainConfig;
    pub type A68 = prelude::TrialFailure;
    pub type A69 = prelude::TrialOutcome;
    pub type A70 = prelude::TrialSpec;

    pub trait UsesTraits: prelude::Evaluator + prelude::ProgressSink {}
}

/// Compile-time presence check for free functions: binding each by path
/// fails to build the moment an export is renamed or dropped.
#[test]
fn prelude_functions_exist() {
    let _ = prelude::augment_batch;
    let _ = prelude::build_dataset;
    let _ = prelude::build_paper_dataset;
    let _ = prelude::compute_threads;
    let _ = prelude::kernel_probe;
    let _ = prelude::kfold_cross_validate;
    let _ = prelude::kfold_cross_validate_with_cancel;
    let _ = prelude::makespan_lpt;
    let _ = prelude::markdown_report;
    let _ = prelude::metrics_json;
    let _ = prelude::pareto_front;
    let _ = prelude::predict_all;
    let _ = prelude::predict_energy;
    let _ = prelude::profile_trial;
    let _ = prelude::random_search;
    let _ = prelude::read_journal;
    let _ = prelude::regularized_evolution;
    let _ = prelude::run_full_grid;
    let _ = prelude::serialized_size_bytes;
    let _ = prelude::session;
    let _ = prelude::set_compute_threads;
    let _ = prelude::study_regions;
    let _ = prelude::train;
    let _ = prelude::train_with_cancel;
    let _ = prelude::validate_table2;
}

/// The reviewable snapshot: sorted, duplicate-free names of the types
/// pinned above. Changing the public surface means editing this list in
/// the same commit — which is exactly the review hook we want.
#[test]
fn type_snapshot_is_sorted_and_duplicate_free() {
    const EXPECTED: &[&str] = &[
        "ArchConfig",
        "CancelToken",
        "ChannelMode",
        "ChaosConfig",
        "ChaosFault",
        "CollectingSink",
        "Dataset",
        "DegradationReport",
        "DeviceId",
        "DrainStats",
        "EnergyPrediction",
        "Engine",
        "EngineConfig",
        "EngineConfigBuilder",
        "EngineStats",
        "EvolutionConfig",
        "ExecutionPlan",
        "ExperimentDb",
        "FailureCause",
        "Gauge",
        "GraphError",
        "HydroNasError",
        "InferError",
        "InferRequest",
        "InputCombo",
        "LatencyPrediction",
        "LayerCost",
        "LayerProfile",
        "LrSchedule",
        "MetricsError",
        "MetricsSnapshot",
        "ModelGraph",
        "ModelImportError",
        "Nsga2Config",
        "Numerics",
        "Objective",
        "OnnxError",
        "PlanConfig",
        "Point",
        "PoolConfig",
        "Precision",
        "Prediction",
        "PredictionHandle",
        "QuantileHistogram",
        "RealTrainer",
        "ReproArtifacts",
        "ReproConfig",
        "ResNet",
        "RetryConfig",
        "RetryPolicy",
        "RunControl",
        "SchedulerConfig",
        "SearchSpace",
        "Session",
        "ShedPolicy",
        "StderrTicker",
        "SurrogateEvaluator",
        "Sweep",
        "SweepBuilder",
        "SweepError",
        "SweepEvent",
        "SweepReport",
        "SweepStats",
        "Tensor",
        "TensorRng",
        "TileSet",
        "TrainConfig",
        "TrialFailure",
        "TrialOutcome",
        "TrialSpec",
    ];
    for pair in EXPECTED.windows(2) {
        assert!(
            pair[0] < pair[1],
            "snapshot must stay sorted and duplicate-free: {} >= {}",
            pair[0],
            pair[1]
        );
    }
    // One aliased type per snapshot row (plus the two traits pinned in
    // `types::UsesTraits`).
    assert_eq!(EXPECTED.len(), 70);
}

/// The error taxonomy stays typed: the facade error wraps each
/// subsystem's error and every conversion compiles.
#[test]
fn hydronas_error_wraps_every_subsystem() {
    use hydronas::HydroNasError;
    let from_onnx: HydroNasError = prelude::OnnxError::BadMagic.into();
    let from_io: HydroNasError = std::io::Error::other("disk on fire").into();
    for err in [from_onnx, from_io] {
        assert!(std::error::Error::source(&err).is_some(), "{err}");
    }
}
