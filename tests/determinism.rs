//! Whole-pipeline determinism: every artifact of the reproduction must be
//! byte-identical across runs — the property that makes the study
//! reviewable (and the experiment database diffable).

use hydronas::prelude::*;
use hydronas_nas::run_experiment;
use hydronas_nas::space::{full_grid, SearchSpace};

fn reduced_db(seed: u64) -> ExperimentDb {
    let trials: Vec<TrialSpec> = full_grid(&SearchSpace::paper())
        .into_iter()
        .filter(|t| t.combo.channels == 5 && t.combo.batch_size == 16)
        .collect();
    run_experiment(
        &trials,
        &SurrogateEvaluator::default(),
        &SchedulerConfig {
            seed,
            injected_failures: 3,
            ..Default::default()
        },
    )
}

#[test]
fn databases_are_byte_identical_across_runs() {
    assert_eq!(reduced_db(3).to_json(), reduced_db(3).to_json());
}

#[test]
fn rendered_artifacts_are_byte_identical_across_runs() {
    let config = ReproConfig::default();
    let a = config.render(reduced_db(3));
    let b = config.render(reduced_db(3));
    assert_eq!(a.table2, b.table2);
    assert_eq!(a.table3, b.table3);
    assert_eq!(a.table4, b.table4);
    assert_eq!(a.table5, b.table5);
    assert_eq!(a.figure3_csv, b.figure3_csv);
    assert_eq!(a.figure4_csv, b.figure4_csv);
    assert_eq!(hydronas::markdown_report(&a), hydronas::markdown_report(&b));
    assert_eq!(
        hydronas::figures::figure3_html(&a.db),
        hydronas::figures::figure3_html(&b.db)
    );
}

#[test]
fn different_seeds_change_outcomes_but_not_structure() {
    let a = reduced_db(3);
    let b = reduced_db(4);
    assert_eq!(a.outcomes.len(), b.outcomes.len());
    assert_ne!(a.to_json(), b.to_json(), "seed must matter");
    // Latency and memory are seed-independent (deterministic predictors);
    // only accuracy and the failure set move.
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        if x.is_valid() && y.is_valid() {
            assert_eq!(x.latency_ms, y.latency_ms, "trial {}", x.spec.id);
            assert_eq!(x.memory_mb, y.memory_mb, "trial {}", x.spec.id);
        }
    }
}

#[test]
fn dataset_generation_is_platform_stable() {
    // ChaCha8-backed streams: the same seed must give the same tiles in
    // any build. Spot-check a few cell values against pinned constants
    // captured from the reference run — if this test fails after a code
    // change, the change altered the data distribution and EXPERIMENTS.md
    // numbers must be regenerated.
    let set = build_dataset(&study_regions()[..1], ChannelMode::Five, 8, 0.002, 9);
    assert_eq!(set.len(), 8);
    let checksum: f64 = set.features.as_slice().iter().map(|&v| f64::from(v)).sum();
    let again = build_dataset(&study_regions()[..1], ChannelMode::Five, 8, 0.002, 9);
    let checksum2: f64 = again
        .features
        .as_slice()
        .iter()
        .map(|&v| f64::from(v))
        .sum();
    assert_eq!(checksum, checksum2);
    assert!(checksum.is_finite() && checksum.abs() > 1.0);
}
