//! Real-training integration: the genuine CNN training path (synthetic
//! tiles -> manual-backprop ResNet -> k-fold CV) on miniature instances.

use hydronas::prelude::*;
use hydronas_nas::run_experiment;
use hydronas_nas::space::full_grid;

#[test]
fn real_trainer_separates_crossings_from_negatives() {
    let trainer = RealTrainer::miniature();
    let spec = TrialSpec {
        id: 0,
        combo: InputCombo {
            channels: 5,
            batch_size: 8,
        },
        arch: ArchConfig {
            in_channels: 5,
            kernel_size: 3,
            stride: 2,
            padding: 1,
            pool: None,
            initial_features: 8,
            num_classes: 2,
        },
        kernel_size_pool: 3,
        stride_pool: 2,
    };
    let out = trainer.evaluate(&spec, 11).expect("training succeeds");
    assert!(
        out.mean_accuracy > 55.0,
        "real training above chance: {}",
        out.mean_accuracy
    );
    assert_eq!(out.fold_accuracies.len(), 2);
}

#[test]
fn real_trainer_handles_seven_channel_inputs() {
    let trainer = RealTrainer::miniature();
    let spec = TrialSpec {
        id: 1,
        combo: InputCombo {
            channels: 7,
            batch_size: 8,
        },
        arch: ArchConfig {
            in_channels: 7,
            kernel_size: 3,
            stride: 2,
            padding: 1,
            pool: Some(PoolConfig {
                kernel: 2,
                stride: 2,
            }),
            initial_features: 8,
            num_classes: 2,
        },
        kernel_size_pool: 2,
        stride_pool: 2,
    };
    let out = trainer.evaluate(&spec, 5).expect("training succeeds");
    assert!(out.mean_accuracy > 50.0, "accuracy {}", out.mean_accuracy);
}

#[test]
fn scheduler_runs_real_trials_end_to_end() {
    // A 3-trial grid slice through the *real* trainer: the NAS machinery
    // is identical to the surrogate path, only the evaluator differs.
    let trials: Vec<TrialSpec> = full_grid(&SearchSpace::paper())
        .into_iter()
        .filter(|t| {
            t.combo.channels == 5
                && t.combo.batch_size == 8
                && t.arch.kernel_size == 3
                && t.arch.padding == 1
                && t.arch.stride == 2
                && t.arch.pool.is_none()
                && t.spec_is_canonical()
        })
        .take(3)
        .collect();
    assert_eq!(trials.len(), 3);
    let db = run_experiment(
        &trials,
        &RealTrainer::miniature(),
        &SchedulerConfig {
            injected_failures: 0,
            ..Default::default()
        },
    );
    assert_eq!(db.valid().len(), 3);
    for o in db.valid() {
        assert!(o.accuracy > 40.0, "trained accuracy {}", o.accuracy);
        assert!(o.latency_ms > 0.0 && o.memory_mb > 0.0);
        assert!(o.train_seconds > 0.0, "real training takes real time");
    }
}

/// Helper trait: filter to one canonical row per architecture (the grid
/// repeats no-pool configs across pool-column values).
trait Canonical {
    fn spec_is_canonical(&self) -> bool;
}

impl Canonical for TrialSpec {
    fn spec_is_canonical(&self) -> bool {
        self.kernel_size_pool == 3 && self.stride_pool == 2
    }
}

#[test]
fn training_is_deterministic_per_seed() {
    let trainer = RealTrainer::miniature();
    let spec = TrialSpec {
        id: 0,
        combo: InputCombo {
            channels: 5,
            batch_size: 8,
        },
        arch: ArchConfig {
            in_channels: 5,
            kernel_size: 3,
            stride: 2,
            padding: 1,
            pool: None,
            initial_features: 8,
            num_classes: 2,
        },
        kernel_size_pool: 3,
        stride_pool: 2,
    };
    let a = trainer.evaluate(&spec, 7).unwrap();
    let b = trainer.evaluate(&spec, 7).unwrap();
    assert_eq!(a.fold_accuracies, b.fold_accuracies);
    let c = trainer.evaluate(&spec, 8).unwrap();
    // Different dataset/init draw virtually always moves fold accuracy.
    assert_ne!(a.fold_accuracies, c.fold_accuracies);
}
